//! Property-based tests for the trace substrate.

use proptest::prelude::*;

use cochar_trace::gen::{
    BlockedGemm, Chain, ComputeStream, Gather, Interleave, PointerChase, RandomAccess, Seq,
    SerialParallel, Triad,
};
use cochar_trace::slot::stream_census;
use cochar_trace::{ArrayRef, Lcg, Region, Slot, SlotStream};

fn arr(count: u64, elem: u64) -> ArrayRef {
    Region::new(0, count * elem + 1024).array(count, elem)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lcg_next_below_always_in_bounds(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut r = Lcg::new(seed);
        for _ in 0..32 {
            prop_assert!(r.next_below(bound) < bound);
        }
    }

    #[test]
    fn region_arrays_never_overlap(
        sizes in prop::collection::vec((1u64..200, 1u64..64), 1..8)
    ) {
        let total: u64 = sizes.iter().map(|(c, e)| c * e + 128).sum();
        let mut region = Region::new(1 << 20, total + 1024);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for (count, elem) in sizes {
            let a = region.array(count, elem);
            let span = (a.base(), a.base() + a.bytes());
            for &(lo, hi) in &spans {
                prop_assert!(span.1 <= lo || hi <= span.0, "overlap {span:?} vs {:?}", (lo, hi));
            }
            prop_assert_eq!(span.0 % 64, 0);
            spans.push(span);
        }
    }

    #[test]
    fn seq_access_count_is_exact(n in 1u64..500, compute in 0u32..5, store_every in 0u64..4) {
        let a = arr(n, 8);
        let mut s = Seq::full(a, compute, store_every, 1);
        let (_, mem, _, _) = stream_census(&mut s, 1 << 20);
        prop_assert_eq!(mem, n);
    }

    #[test]
    fn random_access_emits_requested_count(
        n in 1u64..2000, seed in any::<u64>(), store_pct in 0u8..=100
    ) {
        let a = arr(256, 8);
        let mut s = RandomAccess::new(a, n, 1, store_pct, false, seed, 0);
        let (_, mem, _, _) = stream_census(&mut s, 1 << 20);
        prop_assert_eq!(mem, n);
    }

    #[test]
    fn chase_is_always_dependent(n in 1u64..500, seed in any::<u64>()) {
        let a = arr(512, 8);
        let mut s = PointerChase::new(a, n, 0, seed, 0);
        while let Some(slot) = s.next_slot() {
            if let Slot::Load { dep, addr, .. } = slot {
                prop_assert!(dep);
                prop_assert!(addr >= a.base() && addr < a.base() + a.bytes());
            }
        }
    }

    #[test]
    fn triad_load_store_ratio_holds(n in 1u64..200, iters in 1u64..4) {
        let mut region = Region::new(0, 3 * n * 8 + 1024);
        let (a, b, c) = (region.array(n, 8), region.array(n, 8), region.array(n, 8));
        let mut s = Triad::new(a, b, c, iters);
        let (_, _, loads, stores) = stream_census(&mut s, 1 << 22);
        prop_assert_eq!(loads, 2 * n * iters);
        prop_assert_eq!(stores, n * iters);
    }

    #[test]
    fn gather_addresses_stay_in_their_arrays(
        n in 1u64..300, hot in 0u8..=100, seed in any::<u64>()
    ) {
        let mut region = Region::new(0, 1 << 20);
        let index = region.array(512, 8);
        let data = region.array(1024, 8);
        let mut s = Gather::new(index, data, 0, n.min(512), 1, hot, 100, 3, seed, 0);
        while let Some(slot) = s.next_slot() {
            if let Slot::Load { addr, dep, .. } = slot {
                if dep {
                    prop_assert!(addr >= data.base() && addr < data.base() + data.bytes());
                } else {
                    prop_assert!(addr >= index.base() && addr < index.base() + index.bytes());
                }
            }
        }
    }

    #[test]
    fn chain_preserves_total_instructions(parts in prop::collection::vec(1u64..300, 1..6)) {
        let expected: u64 = parts.iter().sum();
        let streams: Vec<Box<dyn SlotStream>> = parts
            .iter()
            .map(|&n| Box::new(ComputeStream::new(n, 7)) as Box<dyn SlotStream>)
            .collect();
        let mut chain = Chain::new(streams);
        let (instr, _, _, _) = stream_census(&mut chain, 1 << 20);
        prop_assert_eq!(instr, expected);
    }

    #[test]
    fn interleave_preserves_total_instructions(
        parts in prop::collection::vec((1u64..200, 1u32..5), 1..5)
    ) {
        let expected: u64 = parts.iter().map(|(n, _)| *n).sum();
        let children: Vec<(Box<dyn SlotStream>, u32)> = parts
            .iter()
            .map(|&(n, w)| (Box::new(ComputeStream::new(n, 3)) as Box<dyn SlotStream>, w))
            .collect();
        let mut s = Interleave::new(children);
        let (instr, _, _, _) = stream_census(&mut s, 1 << 20);
        prop_assert_eq!(instr, expected);
    }

    #[test]
    fn gemm_total_accesses_scale_with_parameters(
        tile in 1u64..64, tiles in 1u64..8, reuse in 0u32..4
    ) {
        let a = arr(1024, 8);
        let b = arr(1024, 8);
        let mut s = BlockedGemm::new(a, b, tile, tiles, reuse, 1, 0, 0);
        let (_, mem, _, _) = stream_census(&mut s, 1 << 22);
        prop_assert_eq!(mem, 2 * tile * tiles * (u64::from(reuse) + 1));
    }

    #[test]
    fn serial_parallel_shares_never_exceed_total(
        total in 1u64..1_000_000, pml in 0u16..=1000, threads in 1usize..16
    ) {
        let (serial, parallel) = SerialParallel::shares(total, pml, threads);
        prop_assert!(serial <= total);
        prop_assert!(serial + parallel * threads as u64 <= total + threads as u64);
    }

    #[test]
    fn streams_are_deterministic_for_equal_seeds(seed in any::<u64>()) {
        let a = arr(256, 8);
        let collect = |seed| {
            let mut s = RandomAccess::new(a, 200, 1, 20, false, seed, 0);
            let mut v = Vec::new();
            while let Some(slot) = s.next_slot() {
                v.push(slot);
            }
            v
        };
        prop_assert_eq!(collect(seed), collect(seed));
    }
}
