//! Address-space layout helpers.
//!
//! Each workload instance owns a disjoint [`Region`] of the simulated
//! 64-bit address space. Inside a region, workload models carve out
//! [`ArrayRef`]s — typed, line-aligned arrays — and generate accesses by
//! element index, exactly like the real applications index their own data
//! structures. Disjoint regions guarantee co-runners never share data, while
//! set-index bits still collide so cache contention is fully present.

/// Size of a cache line in bytes. The whole suite assumes 64-byte lines,
/// matching the paper's Sandy Bridge platform.
pub const LINE: u64 = 64;

/// A contiguous, owned chunk of simulated address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    base: u64,
    len: u64,
    cursor: u64,
}

impl Region {
    /// A region of `len` bytes starting at `base` (both rounded to lines).
    pub fn new(base: u64, len: u64) -> Self {
        let base = align_up(base, LINE);
        Region { base, len: align_up(len, LINE), cursor: base }
    }

    /// Base address of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total size in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the region has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One past the last byte of the region.
    pub fn end(&self) -> u64 {
        self.base + self.len
    }

    /// Bytes not yet carved into arrays.
    pub fn remaining(&self) -> u64 {
        self.end() - self.cursor
    }

    /// Carves a line-aligned array of `count` elements of `elem_size` bytes
    /// from the front of the free space.
    ///
    /// # Panics
    /// Panics if the region does not have enough free space — workload
    /// footprints are a design-time property, so an overflow is a bug in
    /// the workload model, not a runtime condition.
    pub fn array(&mut self, count: u64, elem_size: u64) -> ArrayRef {
        let bytes = align_up(count.saturating_mul(elem_size), LINE);
        assert!(
            bytes <= self.remaining(),
            "region overflow: need {bytes} bytes, {} remaining",
            self.remaining()
        );
        let base = self.cursor;
        // Skip one guard line after each array. Besides catching
        // off-by-one bugs, this breaks the exact power-of-two spacing
        // that would otherwise alias equally-sized operand arrays into
        // the same cache sets (a real pathology, but not one the modelled
        // applications exhibit — allocators and page mappings decorrelate
        // them on real machines).
        self.cursor += bytes + LINE.min(self.remaining() - bytes);
        ArrayRef { base, count, elem_size }
    }

    /// Splits off a sub-region of `len` bytes for a nested allocator.
    pub fn subregion(&mut self, len: u64) -> Region {
        let len = align_up(len, LINE);
        assert!(
            len <= self.remaining(),
            "region overflow: need {len} bytes, {} remaining",
            self.remaining()
        );
        let r = Region::new(self.cursor, len);
        self.cursor += len;
        r
    }
}

/// A line-aligned array carved from a [`Region`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrayRef {
    base: u64,
    count: u64,
    elem_size: u64,
}

impl ArrayRef {
    /// Base address of the array.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of elements.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Element size in bytes.
    pub fn elem_size(&self) -> u64 {
        self.elem_size
    }

    /// Address of element `i`.
    ///
    /// # Panics
    /// Panics in debug builds if `i` is out of bounds.
    #[inline]
    pub fn at(&self, i: u64) -> u64 {
        debug_assert!(i < self.count, "index {i} out of bounds ({})", self.count);
        self.base + i * self.elem_size
    }

    /// Total byte footprint (line-aligned).
    pub fn bytes(&self) -> u64 {
        align_up(self.count * self.elem_size, LINE)
    }
}

/// Rounds `x` up to a multiple of `to` (power of two).
#[inline]
pub fn align_up(x: u64, to: u64) -> u64 {
    debug_assert!(to.is_power_of_two());
    (x + to - 1) & !(to - 1)
}

/// Line-number of an address.
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr / LINE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_basic() {
        assert_eq!(align_up(0, 64), 0);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert_eq!(align_up(65, 64), 128);
    }

    #[test]
    fn region_carves_disjoint_arrays() {
        let mut r = Region::new(1 << 30, 4096);
        let a = r.array(8, 8);
        let b = r.array(8, 8);
        assert_eq!(a.base() % LINE, 0);
        assert_eq!(b.base() % LINE, 0);
        // Arrays must not overlap.
        assert!(a.base() + a.bytes() <= b.base());
        assert!(b.base() + b.bytes() <= r.end());
    }

    #[test]
    fn array_indexing() {
        let mut r = Region::new(0, 4096);
        let a = r.array(100, 8);
        assert_eq!(a.at(0), a.base());
        assert_eq!(a.at(1), a.base() + 8);
        assert_eq!(a.at(99), a.base() + 99 * 8);
    }

    #[test]
    #[should_panic(expected = "region overflow")]
    fn region_overflow_panics() {
        let mut r = Region::new(0, 128);
        let _ = r.array(1000, 8);
    }

    #[test]
    fn subregion_is_disjoint() {
        let mut r = Region::new(4096, 8192);
        let s1 = r.subregion(1024);
        let s2 = r.subregion(1024);
        assert_eq!(s1.len(), 1024);
        assert!(s1.end() <= s2.base());
        assert!(s2.end() <= r.end());
    }

    #[test]
    fn unaligned_region_base_is_aligned() {
        let r = Region::new(100, 100);
        assert_eq!(r.base() % LINE, 0);
        assert_eq!(r.len() % LINE, 0);
    }
}
