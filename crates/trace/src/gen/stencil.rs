//! Multi-stream stencil sweeps: the HPC signature pattern.

use crate::layout::ArrayRef;
use crate::slot::{Slot, SlotBuf, SlotStream};

/// A 1-D sweep reading `points` neighbouring planes per output element and
/// writing one, modelling nested-loop HPC kernels (IRSmk's 27-point
/// matrix-multiply loops, fotonik3d's FDTD sweeps, lulesh's hydro loops).
///
/// Each "plane" is a separate sequential stream offset by `plane_stride`
/// elements, so the pattern exercises the stream prefetcher with several
/// concurrent streams — regular, prefetch-sensitive, high bandwidth.
pub struct Stencil {
    src: ArrayRef,
    dst: ArrayRef,
    i: u64,
    end: u64,
    points: u32,
    plane_stride: u64,
    compute_per_point: u32,
    pc: u32,
    step: u32,
}

impl Stencil {
    /// Sweeps output elements `start..end`. Reads `points` planes from
    /// `src` at offsets `i + k * plane_stride` (wrapped), then computes and
    /// stores `dst[i]`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        src: ArrayRef,
        dst: ArrayRef,
        start: u64,
        end: u64,
        points: u32,
        plane_stride: u64,
        compute_per_point: u32,
        pc: u32,
    ) -> Self {
        assert!(points > 0);
        assert!(start <= end && end <= dst.count());
        Stencil { src, dst, i: start, end, points, plane_stride, compute_per_point, pc, step: 0 }
    }
}

impl SlotStream for Stencil {
    fn next_slot(&mut self) -> Option<Slot> {
        if self.i >= self.end {
            return None;
        }
        let slot = if self.step < self.points {
            // Plane reads: each plane is its own sequential stream with its
            // own pc, so the IP/stream prefetchers can track all of them.
            let k = u64::from(self.step);
            let idx = (self.i + k * self.plane_stride) % self.src.count();
            Slot::Load { addr: self.src.at(idx), pc: self.pc + self.step, dep: false }
        } else if self.step == self.points && self.compute_per_point > 0 {
            Slot::Compute(self.compute_per_point * self.points)
        } else {
            Slot::Store { addr: self.dst.at(self.i), pc: self.pc + self.points + 1 }
        };
        // Advance the step machine.
        if self.step < self.points {
            self.step += 1;
            if self.step == self.points && self.compute_per_point == 0 {
                self.step += 1; // skip the compute state
            }
        } else if self.step == self.points {
            self.step += 1;
        } else {
            self.step = 0;
            self.i += 1;
        }
        Some(slot)
    }

    fn fill(&mut self, buf: &mut SlotBuf) -> usize {
        let mut pulled = 0;
        // Finish any partially emitted element group, then emit whole
        // groups (plane loads, optional compute, store) in a fused loop.
        while self.step != 0 && self.i < self.end && buf.has_room() {
            let s = self.next_slot().expect("mid-group stencil slot");
            buf.push(s);
            pulled += 1;
        }
        let group = self.points as usize + usize::from(self.compute_per_point > 0) + 1;
        let src_n = self.src.count();
        while self.i < self.end && buf.room() >= group {
            for k in 0..u64::from(self.points) {
                let idx = (self.i + k * self.plane_stride) % src_n;
                buf.push(Slot::Load {
                    addr: self.src.at(idx),
                    pc: self.pc + k as u32,
                    dep: false,
                });
            }
            if self.compute_per_point > 0 {
                buf.push(Slot::Compute(self.compute_per_point * self.points));
            }
            buf.push(Slot::Store { addr: self.dst.at(self.i), pc: self.pc + self.points + 1 });
            pulled += group;
            self.i += 1;
        }
        while buf.has_room() {
            match self.next_slot() {
                Some(s) => {
                    buf.push(s);
                    pulled += 1;
                }
                None => break,
            }
        }
        pulled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Region;
    use crate::slot::{collect_slots, stream_census};

    fn arrays(n: u64) -> (ArrayRef, ArrayRef) {
        let mut r = Region::new(0, 2 * n * 8 + 256);
        (r.array(n, 8), r.array(n, 8))
    }

    #[test]
    fn stencil_reads_points_then_stores() {
        let (src, dst) = arrays(64);
        let slots = collect_slots(&mut Stencil::new(src, dst, 0, 2, 3, 16, 2, 0), 100);
        // Per element: 3 loads, 1 compute, 1 store.
        assert_eq!(slots.len(), 10);
        assert!(matches!(slots[0], Slot::Load { .. }));
        assert!(matches!(slots[1], Slot::Load { .. }));
        assert!(matches!(slots[2], Slot::Load { .. }));
        assert_eq!(slots[3], Slot::Compute(6));
        assert!(matches!(slots[4], Slot::Store { .. }));
    }

    #[test]
    fn stencil_planes_are_offset_streams() {
        let (src, dst) = arrays(256);
        let slots = collect_slots(&mut Stencil::new(src, dst, 0, 4, 2, 32, 0, 0), 100);
        assert_eq!(slots[0].addr(), Some(src.at(0)));
        assert_eq!(slots[1].addr(), Some(src.at(32)));
        // Next element: both planes advance by one.
        assert_eq!(slots[3].addr(), Some(src.at(1)));
        assert_eq!(slots[4].addr(), Some(src.at(33)));
    }

    #[test]
    fn stencil_zero_compute_skips_compute_slots() {
        let (src, dst) = arrays(64);
        let mut s = Stencil::new(src, dst, 0, 8, 3, 8, 0, 0);
        let (_, mem, loads, stores) = stream_census(&mut s, 1000);
        assert_eq!(loads, 24);
        assert_eq!(stores, 8);
        assert_eq!(mem, 32);
    }

    #[test]
    fn stencil_stores_cover_output_range() {
        let (src, dst) = arrays(64);
        let slots = collect_slots(&mut Stencil::new(src, dst, 10, 14, 1, 4, 0, 0), 100);
        let stores: Vec<u64> = slots
            .iter()
            .filter(|s| matches!(s, Slot::Store { .. }))
            .map(|s| s.addr().unwrap())
            .collect();
        assert_eq!(stores, vec![dst.at(10), dst.at(11), dst.at(12), dst.at(13)]);
    }
}
