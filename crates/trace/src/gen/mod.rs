//! Synthetic access-pattern generators.
//!
//! These are the building blocks of the workload models: each generator is
//! a small state machine emitting [`crate::Slot`]s with a characteristic
//! address pattern, regularity, dependence structure, and compute/memory
//! ratio. The combinators in [`combine`] compose them into full
//! applications (phases, mixes, serial fractions, barrier loops).

pub mod chase;
pub mod combine;
pub mod gather;
pub mod gemm;
pub mod rand_access;
pub mod seq;
pub mod stencil;
pub mod throttle;
pub mod triad;

pub use chase::PointerChase;
pub use combine::{BarrierLoop, Chain, ComputeStream, Interleave, SerialParallel};
pub use gather::Gather;
pub use gemm::BlockedGemm;
pub use rand_access::{ConflictStream, RandomAccess};
pub use seq::{Seq, Strided};
pub use stencil::Stencil;
pub use throttle::Throttle;
pub use triad::Triad;
