//! Memory-rate throttling: the compilation-side mitigation.
//!
//! Tang et al. ("Compiling for niceness", CGO'12) and ReQoS (ASPLOS'13)
//! statically or reactively pad an application's contentious code regions
//! to reduce its memory issue rate and protect QoS-sensitive co-runners.
//! [`Throttle`] is that transformation applied to a slot stream: after
//! every memory access from a *marked* access site, insert `pad` compute
//! cycles.

use std::collections::HashSet;

use crate::slot::{Slot, SlotStream};

/// Wraps a stream, padding marked memory accesses with compute cycles.
pub struct Throttle {
    inner: Box<dyn SlotStream>,
    /// Compute cycles inserted after each marked access.
    pad: u32,
    /// Access sites (pcs) to throttle; `None` throttles every access.
    sites: Option<HashSet<u32>>,
    pending_pad: bool,
}

impl Throttle {
    /// Throttles every memory access by `pad` cycles.
    pub fn all(inner: Box<dyn SlotStream>, pad: u32) -> Self {
        Throttle { inner, pad, sites: None, pending_pad: false }
    }

    /// Throttles only the given access sites — the ReQoS model, where a
    /// profile identifies the contentious region (e.g. a graph `gather`)
    /// and only it is marked.
    pub fn sites(inner: Box<dyn SlotStream>, pad: u32, sites: HashSet<u32>) -> Self {
        Throttle { inner, pad, sites: Some(sites), pending_pad: false }
    }

    fn marked(&self, pc: u32) -> bool {
        match &self.sites {
            None => true,
            Some(s) => s.contains(&pc),
        }
    }
}

impl SlotStream for Throttle {
    fn next_slot(&mut self) -> Option<Slot> {
        if self.pending_pad {
            self.pending_pad = false;
            return Some(Slot::Compute(self.pad));
        }
        let slot = self.inner.next_slot()?;
        if self.pad > 0 {
            match slot {
                Slot::Load { pc, .. } | Slot::Store { pc, .. } if self.marked(pc) => {
                    self.pending_pad = true;
                }
                _ => {}
            }
        }
        Some(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Region;
    use crate::slot::{collect_slots, stream_census, VecStream};

    fn sample() -> Vec<Slot> {
        vec![
            Slot::Load { addr: 0, pc: 1, dep: false },
            Slot::Compute(5),
            Slot::Load { addr: 64, pc: 2, dep: true },
            Slot::Store { addr: 128, pc: 1 },
        ]
    }

    #[test]
    fn throttle_all_pads_every_access() {
        let mut t = Throttle::all(Box::new(VecStream::new(sample())), 10);
        let slots = collect_slots(&mut t, 100);
        assert_eq!(
            slots,
            vec![
                Slot::Load { addr: 0, pc: 1, dep: false },
                Slot::Compute(10),
                Slot::Compute(5),
                Slot::Load { addr: 64, pc: 2, dep: true },
                Slot::Compute(10),
                Slot::Store { addr: 128, pc: 1 },
                Slot::Compute(10),
            ]
        );
    }

    #[test]
    fn throttle_sites_pads_only_marked_pcs() {
        let sites: HashSet<u32> = [2].into_iter().collect();
        let mut t = Throttle::sites(Box::new(VecStream::new(sample())), 7, sites);
        let slots = collect_slots(&mut t, 100);
        let pads = slots.iter().filter(|s| **s == Slot::Compute(7)).count();
        assert_eq!(pads, 1, "only the pc-2 load is padded: {slots:?}");
    }

    #[test]
    fn zero_pad_is_identity() {
        let mut t = Throttle::all(Box::new(VecStream::new(sample())), 0);
        assert_eq!(collect_slots(&mut t, 100), sample());
    }

    #[test]
    fn throttle_preserves_memory_access_count() {
        let a = Region::new(0, 1 << 16).array(1024, 8);
        let inner = Box::new(crate::gen::Seq::full(a, 1, 4, 3));
        let mut t = Throttle::all(inner, 20);
        let (_, mem, loads, stores) = stream_census(&mut t, 1 << 20);
        assert_eq!(mem, 1024);
        assert_eq!(loads + stores, 1024);
    }
}
