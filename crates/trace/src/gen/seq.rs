//! Sequential and strided streaming patterns.

use crate::layout::ArrayRef;
use crate::slot::{Slot, SlotBuf, SlotStream};

/// Sequential sweep over an array: the canonical prefetch-friendly,
/// bandwidth-hungry pattern (STREAM-like reads, fotonik3d-like sweeps).
///
/// Emits `Compute(compute_per_access)` between accesses when nonzero, and
/// turns every `store_every`-th access into a store (0 = loads only).
pub struct Seq {
    array: ArrayRef,
    idx: u64,
    end: u64,
    compute_per_access: u32,
    store_every: u64,
    access_no: u64,
    pc: u32,
    pending_access: bool,
}

impl Seq {
    /// Sweeps elements `start..end` of `array`.
    pub fn slice(
        array: ArrayRef,
        start: u64,
        end: u64,
        compute_per_access: u32,
        store_every: u64,
        pc: u32,
    ) -> Self {
        assert!(start <= end && end <= array.count());
        Seq {
            array,
            idx: start,
            end,
            compute_per_access,
            store_every,
            access_no: 0,
            pc,
            pending_access: true,
        }
    }

    /// Sweeps the whole array.
    pub fn full(array: ArrayRef, compute_per_access: u32, store_every: u64, pc: u32) -> Self {
        Self::slice(array, 0, array.count(), compute_per_access, store_every, pc)
    }
}

impl SlotStream for Seq {
    fn next_slot(&mut self) -> Option<Slot> {
        if self.idx >= self.end {
            return None;
        }
        if !self.pending_access && self.compute_per_access > 0 {
            self.pending_access = true;
            return Some(Slot::Compute(self.compute_per_access));
        }
        let addr = self.array.at(self.idx);
        self.idx += 1;
        self.access_no += 1;
        self.pending_access = false;
        let is_store = self.store_every != 0 && self.access_no.is_multiple_of(self.store_every);
        Some(if is_store {
            Slot::Store { addr, pc: self.pc }
        } else {
            Slot::Load { addr, pc: self.pc, dep: false }
        })
    }

    fn fill(&mut self, buf: &mut SlotBuf) -> usize {
        // Load-only sweeps (the common bandwidth pattern) take a fused
        // loop with the mode branches hoisted out; mixed sweeps fall back
        // to the per-slot state machine.
        if self.compute_per_access == 0 && self.store_every == 0 {
            let take = (buf.room() as u64).min(self.end - self.idx);
            for _ in 0..take {
                buf.push(Slot::Load { addr: self.array.at(self.idx), pc: self.pc, dep: false });
                self.idx += 1;
            }
            self.access_no += take;
            self.pending_access = take == 0 && self.pending_access;
            return take as usize;
        }
        let mut pulled = 0;
        while buf.has_room() {
            match self.next_slot() {
                Some(s) => {
                    buf.push(s);
                    pulled += 1;
                }
                None => break,
            }
        }
        pulled
    }
}

/// Strided sweep: touches every `stride`-th element. With a stride of one
/// line or more per access this defeats spatial locality while remaining
/// detectable by stride/IP prefetchers.
pub struct Strided {
    array: ArrayRef,
    idx: u64,
    stride: u64,
    remaining: u64,
    compute_per_access: u32,
    pc: u32,
    pending_access: bool,
}

impl Strided {
    /// `accesses` loads advancing by `stride` elements (wrapping).
    pub fn new(array: ArrayRef, stride: u64, accesses: u64, compute_per_access: u32, pc: u32) -> Self {
        assert!(stride > 0);
        Strided {
            array,
            idx: 0,
            stride,
            remaining: accesses,
            compute_per_access,
            pc,
            pending_access: true,
        }
    }
}

impl SlotStream for Strided {
    fn next_slot(&mut self) -> Option<Slot> {
        if self.remaining == 0 {
            return None;
        }
        if !self.pending_access && self.compute_per_access > 0 {
            self.pending_access = true;
            return Some(Slot::Compute(self.compute_per_access));
        }
        let addr = self.array.at(self.idx % self.array.count());
        self.idx += self.stride;
        self.remaining -= 1;
        self.pending_access = false;
        Some(Slot::Load { addr, pc: self.pc, dep: false })
    }

    fn fill(&mut self, buf: &mut SlotBuf) -> usize {
        if self.compute_per_access == 0 {
            let n = self.array.count();
            let take = (buf.room() as u64).min(self.remaining);
            for _ in 0..take {
                buf.push(Slot::Load { addr: self.array.at(self.idx % n), pc: self.pc, dep: false });
                self.idx += self.stride;
            }
            self.remaining -= take;
            self.pending_access = take == 0 && self.pending_access;
            return take as usize;
        }
        let mut pulled = 0;
        while buf.has_room() {
            match self.next_slot() {
                Some(s) => {
                    buf.push(s);
                    pulled += 1;
                }
                None => break,
            }
        }
        pulled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Region;
    use crate::slot::collect_slots;

    fn arr(count: u64, elem: u64) -> ArrayRef {
        Region::new(0, count * elem + 64).array(count, elem)
    }

    #[test]
    fn seq_visits_all_elements_in_order() {
        let a = arr(16, 8);
        let slots = collect_slots(&mut Seq::full(a, 0, 0, 1), 100);
        assert_eq!(slots.len(), 16);
        for (i, s) in slots.iter().enumerate() {
            assert_eq!(s.addr(), Some(a.at(i as u64)));
        }
    }

    #[test]
    fn seq_interleaves_compute() {
        let a = arr(4, 8);
        let slots = collect_slots(&mut Seq::full(a, 3, 0, 1), 100);
        // load, compute, load, compute, load, compute, load
        assert_eq!(slots.len(), 7);
        assert!(matches!(slots[0], Slot::Load { .. }));
        assert_eq!(slots[1], Slot::Compute(3));
    }

    #[test]
    fn seq_store_every_marks_stores() {
        let a = arr(6, 8);
        let slots = collect_slots(&mut Seq::full(a, 0, 3, 1), 100);
        let stores = slots.iter().filter(|s| matches!(s, Slot::Store { .. })).count();
        assert_eq!(stores, 2);
    }

    #[test]
    fn seq_slice_respects_bounds() {
        let a = arr(16, 8);
        let slots = collect_slots(&mut Seq::slice(a, 4, 8, 0, 0, 1), 100);
        assert_eq!(slots.len(), 4);
        assert_eq!(slots[0].addr(), Some(a.at(4)));
        assert_eq!(slots[3].addr(), Some(a.at(7)));
    }

    #[test]
    fn strided_advances_by_stride() {
        let a = arr(64, 8);
        let slots = collect_slots(&mut Strided::new(a, 8, 4, 0, 1), 100);
        assert_eq!(slots.len(), 4);
        assert_eq!(slots[0].addr(), Some(a.at(0)));
        assert_eq!(slots[1].addr(), Some(a.at(8)));
        assert_eq!(slots[2].addr(), Some(a.at(16)));
    }

    #[test]
    fn strided_wraps_around() {
        let a = arr(8, 8);
        let slots = collect_slots(&mut Strided::new(a, 5, 4, 0, 1), 100);
        assert_eq!(slots[2].addr(), Some(a.at(2))); // 10 % 8
    }
}
