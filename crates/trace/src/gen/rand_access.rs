//! Random and cache-conflicting access patterns.

use crate::layout::{ArrayRef, LINE};
use crate::rng::Lcg;
use crate::slot::{Slot, SlotStream};

/// Independent uniformly random accesses over an array.
///
/// Addresses are *data-independent* (the core can keep several misses in
/// flight), but the pattern defeats every prefetcher. With a footprint
/// larger than the LLC this is a pure bandwidth/latency stressor — e.g.
/// mcf-like behaviour with `dep = false`, or a scatter phase.
pub struct RandomAccess {
    array: ArrayRef,
    rng: Lcg,
    remaining: u64,
    compute_per_access: u32,
    store_ratio_pct: u8,
    dep: bool,
    pc: u32,
    pending_access: bool,
}

impl RandomAccess {
    /// `accesses` uniform accesses over `array` (see struct docs).
    pub fn new(
        array: ArrayRef,
        accesses: u64,
        compute_per_access: u32,
        store_ratio_pct: u8,
        dep: bool,
        seed: u64,
        pc: u32,
    ) -> Self {
        assert!(store_ratio_pct <= 100);
        RandomAccess {
            array,
            rng: Lcg::new(seed),
            remaining: accesses,
            compute_per_access,
            store_ratio_pct,
            dep,
            pc,
            pending_access: true,
        }
    }
}

impl SlotStream for RandomAccess {
    fn next_slot(&mut self) -> Option<Slot> {
        if self.remaining == 0 {
            return None;
        }
        if !self.pending_access && self.compute_per_access > 0 {
            self.pending_access = true;
            return Some(Slot::Compute(self.compute_per_access));
        }
        self.remaining -= 1;
        self.pending_access = false;
        let idx = self.rng.next_below(self.array.count());
        let addr = self.array.at(idx);
        let is_store = u64::from(self.store_ratio_pct) > self.rng.next_below(100);
        Some(if is_store {
            Slot::Store { addr, pc: self.pc }
        } else {
            Slot::Load { addr, pc: self.pc, dep: self.dep }
        })
    }
}

/// The *Bandit* pattern (Xu et al., IPDPS'17): every access misses in every
/// cache because consecutive accesses conflict in the same cache set.
///
/// Addresses jump by `conflict_stride` bytes (the caller passes the way-span
/// of the largest cache so that lines map to a handful of sets), so the
/// stream has no spatial locality, no reuse, and no detectable stride at
/// line granularity — yet each request is independent, so bandwidth stays
/// high. The paper measures ~18 GB/s for 4-thread Bandit.
pub struct ConflictStream {
    array: ArrayRef,
    rng: Lcg,
    conflict_stride: u64,
    set_groups: u64,
    cursor: u64,
    remaining: u64,
    pc: u32,
}

impl ConflictStream {
    /// `conflict_stride` is the byte distance between consecutive accesses
    /// (typically `sets * LINE` of the target cache); `set_groups` is how
    /// many distinct conflicting lanes to rotate through.
    pub fn new(
        array: ArrayRef,
        accesses: u64,
        conflict_stride: u64,
        set_groups: u64,
        seed: u64,
        pc: u32,
    ) -> Self {
        assert!(conflict_stride >= LINE);
        assert!(set_groups > 0);
        ConflictStream {
            array,
            rng: Lcg::new(seed),
            conflict_stride,
            set_groups,
            cursor: 0,
            remaining: accesses,
            pc,
        }
    }
}

impl SlotStream for ConflictStream {
    fn next_slot(&mut self) -> Option<Slot> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // Walk lanes: same set group, advancing by the conflict stride, with
        // a random lane selection to defeat stream detection.
        let lane = self.rng.next_below(self.set_groups);
        let bytes = self.array.count() * self.array.elem_size();
        let steps = bytes / self.conflict_stride;
        let step = if steps == 0 { 0 } else { self.cursor % steps };
        self.cursor += 1;
        let off = (step * self.conflict_stride + lane * LINE) % bytes;
        let addr = self.array.base() + (off & !(LINE - 1));
        Some(Slot::Load { addr, pc: self.pc, dep: false })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Region;
    use crate::slot::collect_slots;

    fn arr(bytes: u64) -> ArrayRef {
        Region::new(0, bytes + 64).array(bytes / 8, 8)
    }

    #[test]
    fn random_access_stays_in_bounds() {
        let a = arr(1 << 16);
        let slots = collect_slots(&mut RandomAccess::new(a, 500, 0, 0, false, 1, 0), 1000);
        assert_eq!(slots.len(), 500);
        for s in &slots {
            let addr = s.addr().unwrap();
            assert!(addr >= a.base() && addr < a.base() + a.bytes());
        }
    }

    #[test]
    fn random_access_store_ratio_roughly_holds() {
        let a = arr(1 << 16);
        let slots =
            collect_slots(&mut RandomAccess::new(a, 2000, 0, 25, false, 2, 0), 5000);
        let stores = slots.iter().filter(|s| matches!(s, Slot::Store { .. })).count();
        let frac = stores as f64 / 2000.0;
        assert!((0.18..0.32).contains(&frac), "store fraction {frac}");
    }

    #[test]
    fn random_access_dep_flag_propagates() {
        let a = arr(1 << 12);
        let slots = collect_slots(&mut RandomAccess::new(a, 10, 0, 0, true, 3, 0), 100);
        for s in slots {
            assert!(matches!(s, Slot::Load { dep: true, .. }));
        }
    }

    #[test]
    fn random_access_is_deterministic() {
        let a = arr(1 << 14);
        let s1 = collect_slots(&mut RandomAccess::new(a, 100, 1, 10, false, 7, 0), 1000);
        let s2 = collect_slots(&mut RandomAccess::new(a, 100, 1, 10, false, 7, 0), 1000);
        assert_eq!(s1, s2);
    }

    #[test]
    fn conflict_stream_addresses_are_line_aligned_and_spread() {
        let a = arr(1 << 20);
        let slots = collect_slots(&mut ConflictStream::new(a, 200, 1 << 15, 4, 5, 0), 1000);
        let mut distinct = std::collections::HashSet::new();
        for s in &slots {
            let addr = s.addr().unwrap();
            assert_eq!(addr % LINE, 0);
            assert!(addr >= a.base() && addr < a.base() + a.bytes());
            distinct.insert(addr);
        }
        // The pattern must cycle over many distinct lines (no reuse window).
        assert!(distinct.len() > 50, "only {} distinct lines", distinct.len());
    }

    #[test]
    fn conflict_stream_hits_few_set_groups() {
        // All addresses must fall in at most `set_groups` distinct line
        // offsets modulo the conflict stride — that is what makes them
        // conflict in a set-associative cache.
        let a = arr(1 << 20);
        let stride = 1 << 14;
        let slots = collect_slots(&mut ConflictStream::new(a, 500, stride, 4, 6, 0), 1000);
        let mut groups = std::collections::HashSet::new();
        for s in &slots {
            groups.insert((s.addr().unwrap() - a.base()) % stride);
        }
        assert!(groups.len() <= 4, "expected <=4 set groups, got {}", groups.len());
    }
}
