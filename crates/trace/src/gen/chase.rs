//! Pointer chasing: serialized, latency-bound traversal.

use crate::layout::ArrayRef;
use crate::rng::Lcg;
use crate::slot::{Slot, SlotStream};

/// Dependent pointer chase over an array, the canonical latency-bound
/// pattern (linked-list traversal, mcf's network simplex arcs).
///
/// Every load is marked `dep = true`: the core must retire the previous
/// load before the next address is known, so at most one miss is in flight
/// and the thread's progress is bounded by round-trip memory latency, not
/// bandwidth.
pub struct PointerChase {
    array: ArrayRef,
    rng: Lcg,
    remaining: u64,
    compute_per_access: u32,
    pc: u32,
    pending_access: bool,
}

impl PointerChase {
    /// A chase of `accesses` dependent loads over `array`.
    pub fn new(
        array: ArrayRef,
        accesses: u64,
        compute_per_access: u32,
        seed: u64,
        pc: u32,
    ) -> Self {
        PointerChase {
            array,
            rng: Lcg::new(seed),
            remaining: accesses,
            compute_per_access,
            pc,
            pending_access: true,
        }
    }
}

impl SlotStream for PointerChase {
    fn next_slot(&mut self) -> Option<Slot> {
        if self.remaining == 0 {
            return None;
        }
        if !self.pending_access && self.compute_per_access > 0 {
            self.pending_access = true;
            return Some(Slot::Compute(self.compute_per_access));
        }
        self.remaining -= 1;
        self.pending_access = false;
        // The chase order is a random walk: real chases follow a fixed
        // permutation, but both are equally unpredictable to the cache and
        // prefetchers, and a walk needs no O(n) permutation state.
        let idx = self.rng.next_below(self.array.count());
        Some(Slot::Load { addr: self.array.at(idx), pc: self.pc, dep: true })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Region;
    use crate::slot::collect_slots;

    #[test]
    fn all_loads_are_dependent() {
        let a = Region::new(0, 1 << 16).array(4096, 8);
        let slots = collect_slots(&mut PointerChase::new(a, 100, 0, 1, 0), 1000);
        assert_eq!(slots.len(), 100);
        for s in slots {
            assert!(matches!(s, Slot::Load { dep: true, .. }));
        }
    }

    #[test]
    fn compute_gap_interleaves() {
        let a = Region::new(0, 1 << 16).array(4096, 8);
        let slots = collect_slots(&mut PointerChase::new(a, 3, 5, 1, 0), 1000);
        // load, compute, load, compute, load
        assert_eq!(slots.len(), 5);
        assert_eq!(slots[1], Slot::Compute(5));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Region::new(0, 1 << 16).array(4096, 8);
        let s1 = collect_slots(&mut PointerChase::new(a, 50, 0, 9, 0), 1000);
        let s2 = collect_slots(&mut PointerChase::new(a, 50, 0, 9, 0), 1000);
        let s3 = collect_slots(&mut PointerChase::new(a, 50, 0, 10, 0), 1000);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }
}
