//! McCalpin STREAM triad: `a[i] = b[i] + s * c[i]`.

use crate::layout::ArrayRef;
use crate::slot::{Slot, SlotBuf, SlotStream};

/// The STREAM triad kernel over three equally sized arrays, repeated for
/// `iterations` passes. Two sequential load streams plus one sequential
/// store stream: maximally regular, maximally bandwidth-hungry — the
/// paper's worst-case offender mini-benchmark.
pub struct Triad {
    a: ArrayRef,
    b: ArrayRef,
    c: ArrayRef,
    i: u64,
    n: u64,
    iterations: u64,
    /// 0 = load b, 1 = load c, 2 = compute, 3 = store a
    step: u8,
}

impl Triad {
    /// `a`, `b`, `c` must have the same element count.
    pub fn new(a: ArrayRef, b: ArrayRef, c: ArrayRef, iterations: u64) -> Self {
        assert_eq!(a.count(), b.count());
        assert_eq!(a.count(), c.count());
        assert!(iterations > 0);
        let n = a.count();
        Triad { a, b, c, i: 0, n, iterations, step: 0 }
    }
}

impl SlotStream for Triad {
    fn next_slot(&mut self) -> Option<Slot> {
        if self.iterations == 0 {
            return None;
        }
        let slot = match self.step {
            0 => Slot::Load { addr: self.b.at(self.i), pc: 10, dep: false },
            1 => Slot::Load { addr: self.c.at(self.i), pc: 11, dep: false },
            2 => Slot::Compute(2), // multiply + add
            _ => Slot::Store { addr: self.a.at(self.i), pc: 12 },
        };
        self.step += 1;
        if self.step == 4 {
            self.step = 0;
            self.i += 1;
            if self.i == self.n {
                self.i = 0;
                self.iterations -= 1;
            }
        }
        Some(slot)
    }

    fn fill(&mut self, buf: &mut SlotBuf) -> usize {
        let mut pulled = 0;
        // Align to a group boundary, then emit whole four-slot element
        // groups without re-entering the step machine.
        while self.step != 0 && self.iterations > 0 && buf.has_room() {
            let s = self.next_slot().expect("mid-group triad slot");
            buf.push(s);
            pulled += 1;
        }
        while self.iterations > 0 && buf.room() >= 4 {
            buf.push(Slot::Load { addr: self.b.at(self.i), pc: 10, dep: false });
            buf.push(Slot::Load { addr: self.c.at(self.i), pc: 11, dep: false });
            buf.push(Slot::Compute(2));
            buf.push(Slot::Store { addr: self.a.at(self.i), pc: 12 });
            pulled += 4;
            self.i += 1;
            if self.i == self.n {
                self.i = 0;
                self.iterations -= 1;
            }
        }
        // Top up the last partial group so the budget is met exactly.
        while buf.has_room() {
            match self.next_slot() {
                Some(s) => {
                    buf.push(s);
                    pulled += 1;
                }
                None => break,
            }
        }
        pulled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Region;
    use crate::slot::{collect_slots, stream_census};

    fn three_arrays(n: u64) -> (ArrayRef, ArrayRef, ArrayRef) {
        let mut r = Region::new(0, 3 * n * 8 + 256);
        (r.array(n, 8), r.array(n, 8), r.array(n, 8))
    }

    #[test]
    fn triad_emits_two_loads_one_store_per_element() {
        let (a, b, c) = three_arrays(8);
        let mut t = Triad::new(a, b, c, 1);
        let (instr, mem, loads, stores) = stream_census(&mut t, 1000);
        assert_eq!(loads, 16);
        assert_eq!(stores, 8);
        assert_eq!(mem, 24);
        assert_eq!(instr, 24 + 8 * 2);
    }

    #[test]
    fn triad_addresses_are_sequential_per_stream() {
        let (a, b, c) = three_arrays(4);
        let slots = collect_slots(&mut Triad::new(a, b, c, 1), 1000);
        // First element group: load b[0], load c[0], compute, store a[0].
        assert_eq!(slots[0].addr(), Some(b.at(0)));
        assert_eq!(slots[1].addr(), Some(c.at(0)));
        assert_eq!(slots[3].addr(), Some(a.at(0)));
        // Second group advances each stream by one element.
        assert_eq!(slots[4].addr(), Some(b.at(1)));
    }

    #[test]
    fn triad_iterations_multiply_work() {
        let (a, b, c) = three_arrays(4);
        let one = collect_slots(&mut Triad::new(a, b, c, 1), 10_000).len();
        let three = collect_slots(&mut Triad::new(a, b, c, 3), 10_000).len();
        assert_eq!(three, 3 * one);
    }
}
