//! Blocked dense-compute kernels: the deep-learning-training signature.

use crate::layout::ArrayRef;
use crate::slot::{Slot, SlotBuf, SlotStream};

/// A tiled GEMM-like kernel: sweep a tile of the operand arrays, then
/// re-traverse it `reuse` times (accumulation passes) before moving to the
/// next tile.
///
/// The first pass over a tile misses and streams from memory (regular,
/// prefetchable); the re-traversals hit in cache. `reuse` therefore sets
/// the compute-to-traffic ratio: convolution layers with large batches
/// (CIFAR) use low `reuse` and big tiles — high bandwidth; dense layers on
/// small inputs (MNIST) use high `reuse` — cache-resident.
pub struct BlockedGemm {
    a: ArrayRef,
    b: ArrayRef,
    /// Elements per tile (per operand).
    tile: u64,
    /// Re-traversals of each tile after the first pass.
    reuse: u32,
    /// Compute instructions per element access (the MACs).
    compute_per_access: u32,
    /// Tiles still to process.
    tiles_remaining: u64,
    tile_no: u64,
    pass: u32,
    i: u64,
    pc: u32,
    step: u8,
}

impl BlockedGemm {
    /// Processes `tiles` tiles of `tile` elements each from operands `a`
    /// and `b` (tiles wrap around the arrays).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        a: ArrayRef,
        b: ArrayRef,
        tile: u64,
        tiles: u64,
        reuse: u32,
        compute_per_access: u32,
        first_tile: u64,
        pc: u32,
    ) -> Self {
        assert!(tile > 0 && tile <= a.count() && tile <= b.count());
        BlockedGemm {
            a,
            b,
            tile,
            reuse,
            compute_per_access,
            tiles_remaining: tiles,
            tile_no: first_tile,
            pass: 0,
            i: 0,
            pc,
            step: 0,
        }
    }

    fn tile_base(&self, arr: &ArrayRef) -> u64 {
        let tiles_in_arr = (arr.count() / self.tile).max(1);
        (self.tile_no % tiles_in_arr) * self.tile
    }
}

impl SlotStream for BlockedGemm {
    fn next_slot(&mut self) -> Option<Slot> {
        if self.tiles_remaining == 0 {
            return None;
        }
        let slot = match self.step {
            0 => {
                let base = self.tile_base(&self.a);
                Slot::Load {
                    addr: self.a.at((base + self.i) % self.a.count()),
                    pc: self.pc,
                    dep: false,
                }
            }
            1 => {
                let base = self.tile_base(&self.b);
                Slot::Load {
                    addr: self.b.at((base + self.i) % self.b.count()),
                    pc: self.pc + 1,
                    dep: false,
                }
            }
            _ => Slot::Compute(self.compute_per_access.max(1)),
        };
        self.step += 1;
        if self.step == 3 {
            self.step = 0;
            self.i += 1;
            if self.i == self.tile {
                self.i = 0;
                if self.pass < self.reuse {
                    self.pass += 1;
                } else {
                    self.pass = 0;
                    self.tile_no += 1;
                    self.tiles_remaining -= 1;
                }
            }
        }
        Some(slot)
    }

    fn fill(&mut self, buf: &mut SlotBuf) -> usize {
        let mut pulled = 0;
        while self.step != 0 && self.tiles_remaining > 0 && buf.has_room() {
            let s = self.next_slot().expect("mid-group gemm slot");
            buf.push(s);
            pulled += 1;
        }
        // Whole element groups (load a, load b, compute) of the current
        // tile; the tile bases only change at group boundaries, so they
        // are hoisted per pass segment.
        let compute = Slot::Compute(self.compute_per_access.max(1));
        while self.tiles_remaining > 0 && buf.room() >= 3 {
            let a_base = self.tile_base(&self.a);
            let b_base = self.tile_base(&self.b);
            let groups = ((buf.room() / 3) as u64).min(self.tile - self.i);
            for _ in 0..groups {
                buf.push(Slot::Load {
                    addr: self.a.at((a_base + self.i) % self.a.count()),
                    pc: self.pc,
                    dep: false,
                });
                buf.push(Slot::Load {
                    addr: self.b.at((b_base + self.i) % self.b.count()),
                    pc: self.pc + 1,
                    dep: false,
                });
                buf.push(compute);
                self.i += 1;
            }
            pulled += 3 * groups as usize;
            if self.i == self.tile {
                self.i = 0;
                if self.pass < self.reuse {
                    self.pass += 1;
                } else {
                    self.pass = 0;
                    self.tile_no += 1;
                    self.tiles_remaining -= 1;
                }
            }
        }
        while buf.has_room() {
            match self.next_slot() {
                Some(s) => {
                    buf.push(s);
                    pulled += 1;
                }
                None => break,
            }
        }
        pulled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Region;
    use crate::slot::{collect_slots, stream_census};

    fn arrays(n: u64) -> (ArrayRef, ArrayRef) {
        let mut r = Region::new(0, 2 * n * 8 + 256);
        (r.array(n, 8), r.array(n, 8))
    }

    #[test]
    fn gemm_work_scales_with_tiles_and_reuse() {
        let (a, b) = arrays(1024);
        let one = stream_census(&mut BlockedGemm::new(a, b, 64, 1, 0, 4, 0, 0), 1 << 20);
        let reused = stream_census(&mut BlockedGemm::new(a, b, 64, 1, 2, 4, 0, 0), 1 << 20);
        // reuse=2 adds two extra passes.
        assert_eq!(reused.1, 3 * one.1);
        let two_tiles = stream_census(&mut BlockedGemm::new(a, b, 64, 2, 0, 4, 0, 0), 1 << 20);
        assert_eq!(two_tiles.1, 2 * one.1);
    }

    #[test]
    fn gemm_reuse_revisits_same_addresses() {
        let (a, b) = arrays(1024);
        let slots = collect_slots(&mut BlockedGemm::new(a, b, 16, 1, 1, 1, 0, 0), 1 << 16);
        let loads: Vec<u64> =
            slots.iter().filter_map(|s| s.addr()).collect();
        // Two passes over the same tile: second half equals first half.
        let half = loads.len() / 2;
        assert_eq!(&loads[..half], &loads[half..]);
    }

    #[test]
    fn gemm_tiles_advance_through_array() {
        let (a, b) = arrays(1024);
        let slots = collect_slots(&mut BlockedGemm::new(a, b, 8, 2, 0, 1, 0, 0), 1 << 16);
        // First access of tile 0 vs tile 1 differ by the tile size.
        let first_tile0 = slots[0].addr().unwrap();
        let tile1_start = slots
            .iter()
            .filter_map(|s| s.addr())
            .find(|&addr| addr >= a.at(8) && addr < a.at(16))
            .unwrap();
        assert_eq!(tile1_start - first_tile0, 8 * 8);
    }

    #[test]
    fn gemm_first_tile_offsets_partition_threads() {
        let (a, b) = arrays(1024);
        let t0 = collect_slots(&mut BlockedGemm::new(a, b, 8, 1, 0, 1, 0, 0), 1 << 16);
        let t1 = collect_slots(&mut BlockedGemm::new(a, b, 8, 1, 0, 1, 1, 0), 1 << 16);
        assert_ne!(t0[0].addr(), t1[0].addr());
    }
}
