//! Index-driven gather: the graph-analytics signature pattern.

use crate::layout::ArrayRef;
use crate::rng::Lcg;
use crate::slot::{Slot, SlotStream};

/// Sequential walk of an index array with a dependent irregular load per
/// index: `for i { idx = index[i]; acc += data[idx]; }`.
///
/// This is the memory signature of the gather phase of vertex-centric graph
/// processing (PowerGraph's `gather`, Gemini's pull-mode edge scan): one
/// prefetch-friendly sequential stream (the edge/index array) interleaved
/// with dependent, cache-unfriendly loads into a large vertex array. The
/// mix of one regular and one irregular stream is what makes graph
/// applications simultaneously bandwidth-hungry and latency-sensitive —
/// i.e. *victims* under co-running (paper Secs. V–VI).
pub struct Gather {
    index: ArrayRef,
    data: ArrayRef,
    i: u64,
    end: u64,
    rng: Lcg,
    compute_per_gather: u32,
    /// Locality skew: with probability `hot_pct`%, the dependent load hits
    /// the first `hot_frac_pml`‰ of `data` — modelling power-law vertex
    /// popularity where a few hub vertices absorb most references.
    hot_pct: u8,
    hot_frac_pml: u16,
    /// Optional store back to `data` every n gathers (apply/scatter).
    store_every: u64,
    gather_no: u64,
    pc: u32,
    step: u8,
}

impl Gather {
    #[allow(clippy::too_many_arguments)]
    /// A gather over `index[start..end]` into `data` (see field docs).
    pub fn new(
        index: ArrayRef,
        data: ArrayRef,
        start: u64,
        end: u64,
        compute_per_gather: u32,
        hot_pct: u8,
        hot_frac_pml: u16,
        store_every: u64,
        seed: u64,
        pc: u32,
    ) -> Self {
        assert!(start <= end && end <= index.count());
        assert!(hot_pct <= 100);
        assert!(hot_frac_pml <= 1000);
        Gather {
            index,
            data,
            i: start,
            end,
            rng: Lcg::new(seed),
            compute_per_gather,
            hot_pct,
            hot_frac_pml,
            store_every,
            gather_no: 0,
            pc,
            step: 0,
        }
    }

    fn data_index(&mut self) -> u64 {
        let n = self.data.count();
        if u64::from(self.hot_pct) > self.rng.next_below(100) {
            let hot = (n * u64::from(self.hot_frac_pml) / 1000).max(1);
            self.rng.next_below(hot)
        } else {
            self.rng.next_below(n)
        }
    }
}

impl SlotStream for Gather {
    fn next_slot(&mut self) -> Option<Slot> {
        loop {
            if self.i >= self.end {
                return None;
            }
            match self.step {
                // 1. sequential index load
                0 => {
                    self.step = 1;
                    return Some(Slot::Load {
                        addr: self.index.at(self.i),
                        pc: self.pc,
                        dep: false,
                    });
                }
                // 2. dependent gather into the data array
                1 => {
                    self.step = 2;
                    let idx = self.data_index();
                    return Some(Slot::Load {
                        addr: self.data.at(idx),
                        pc: self.pc + 1,
                        dep: true,
                    });
                }
                // 3. compute on the gathered value
                2 => {
                    self.step = 3;
                    if self.compute_per_gather > 0 {
                        return Some(Slot::Compute(self.compute_per_gather));
                    }
                }
                // 4. occasional store (apply phase), then advance
                _ => {
                    self.step = 0;
                    self.gather_no += 1;
                    let i = self.i;
                    self.i += 1;
                    if self.store_every != 0 && self.gather_no.is_multiple_of(self.store_every) {
                        let idx = i % self.data.count();
                        return Some(Slot::Store { addr: self.data.at(idx), pc: self.pc + 2 });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Region;
    use crate::slot::collect_slots;

    fn arrays() -> (ArrayRef, ArrayRef) {
        let mut r = Region::new(0, 1 << 22);
        (r.array(1 << 12, 8), r.array(1 << 14, 8))
    }

    #[test]
    fn gather_alternates_index_and_data_loads() {
        let (index, data) = arrays();
        let slots =
            collect_slots(&mut Gather::new(index, data, 0, 8, 2, 0, 1000, 0, 1, 0), 1000);
        // Per element: index load, data load, compute.
        assert_eq!(slots.len(), 24);
        assert!(matches!(slots[0], Slot::Load { dep: false, .. }));
        assert!(matches!(slots[1], Slot::Load { dep: true, .. }));
        assert_eq!(slots[2], Slot::Compute(2));
        assert_eq!(slots[0].addr(), Some(index.at(0)));
        assert_eq!(slots[3].addr(), Some(index.at(1)));
    }

    #[test]
    fn gather_data_loads_stay_in_data_array() {
        let (index, data) = arrays();
        let slots =
            collect_slots(&mut Gather::new(index, data, 0, 64, 0, 0, 1000, 0, 2, 0), 1000);
        for s in slots.iter().skip(1).step_by(2) {
            let addr = s.addr().unwrap();
            assert!(addr >= data.base() && addr < data.base() + data.bytes());
        }
    }

    #[test]
    fn hot_skew_concentrates_accesses() {
        let (index, data) = arrays();
        // 90% of gathers hit the first 1% of data.
        let slots = collect_slots(
            &mut Gather::new(index, data, 0, 512, 0, 90, 10, 0, 3, 0),
            4096,
        );
        let hot_limit = data.base() + data.bytes() / 100 + 64;
        let hot = slots
            .iter()
            .filter(|s| matches!(s, Slot::Load { dep: true, .. }))
            .filter(|s| s.addr().unwrap() < hot_limit)
            .count();
        assert!(hot > 400, "expected most gathers in hot region, got {hot}/512");
    }

    #[test]
    fn store_every_emits_apply_stores() {
        let (index, data) = arrays();
        let slots =
            collect_slots(&mut Gather::new(index, data, 0, 10, 0, 0, 1000, 2, 4, 0), 1000);
        let stores = slots.iter().filter(|s| matches!(s, Slot::Store { .. })).count();
        assert_eq!(stores, 5);
    }

    #[test]
    fn slice_bounds_respected() {
        let (index, data) = arrays();
        let slots =
            collect_slots(&mut Gather::new(index, data, 5, 9, 0, 0, 1000, 0, 5, 0), 1000);
        assert_eq!(slots[0].addr(), Some(index.at(5)));
        let index_loads =
            slots.iter().filter(|s| matches!(s, Slot::Load { dep: false, .. })).count();
        assert_eq!(index_loads, 4);
    }
}
