//! Stream combinators: chaining, interleaving, compute padding, barrier
//! loops, and Amdahl serial fractions.
//!
//! These shape the *scalability* of workload models: serial fractions and
//! barrier costs are what make P-SSSP, ATIS, and AMG2006 scale poorly in
//! the paper, independent of their memory behaviour.

use crate::slot::{Slot, SlotBuf, SlotStream};

/// Runs child streams back to back (workload phases).
pub struct Chain {
    parts: Vec<Box<dyn SlotStream>>,
    idx: usize,
}

impl Chain {
    /// Chains `parts` in order.
    pub fn new(parts: Vec<Box<dyn SlotStream>>) -> Self {
        Chain { parts, idx: 0 }
    }
}

impl SlotStream for Chain {
    fn next_slot(&mut self) -> Option<Slot> {
        while self.idx < self.parts.len() {
            if let Some(s) = self.parts[self.idx].next_slot() {
                return Some(s);
            }
            self.idx += 1;
        }
        None
    }

    fn fill(&mut self, buf: &mut SlotBuf) -> usize {
        // Delegate to the current part's own `fill` so its fused loop (or
        // monomorphized default) runs, instead of a virtual call per slot
        // through the chain's `next_slot`. A part is only retired when its
        // `fill` pulls nothing — a nonzero partial batch is not proof of
        // exhaustion for every stream type.
        let mut pulled = 0;
        while buf.has_room() && self.idx < self.parts.len() {
            let got = self.parts[self.idx].fill(buf);
            if got == 0 {
                self.idx += 1;
            }
            pulled += got;
        }
        pulled
    }
}

/// Weighted round-robin interleaving of child streams: `weights[i]` slots
/// from child `i`, then the next child, until every child is exhausted.
/// Models applications whose hot loop mixes several access patterns.
pub struct Interleave {
    children: Vec<(Box<dyn SlotStream>, u32, bool)>,
    cur: usize,
    left: u32,
}

impl Interleave {
    /// Interleaves `children` weighted round-robin; weights must be positive.
    pub fn new(children: Vec<(Box<dyn SlotStream>, u32)>) -> Self {
        assert!(!children.is_empty());
        assert!(children.iter().all(|(_, w)| *w > 0), "weights must be positive");
        let left = children[0].1;
        let children = children.into_iter().map(|(c, w)| (c, w, false)).collect();
        Interleave { children, cur: 0, left }
    }

    fn advance(&mut self) {
        let n = self.children.len();
        for _ in 0..n {
            self.cur = (self.cur + 1) % n;
            if !self.children[self.cur].2 {
                self.left = self.children[self.cur].1;
                return;
            }
        }
    }
}

impl SlotStream for Interleave {
    fn next_slot(&mut self) -> Option<Slot> {
        let n = self.children.len();
        for _ in 0..=n {
            if self.children[self.cur].2 {
                self.advance();
                continue;
            }
            if self.left == 0 {
                self.advance();
                continue;
            }
            match self.children[self.cur].0.next_slot() {
                Some(s) => {
                    self.left -= 1;
                    return Some(s);
                }
                None => {
                    self.children[self.cur].2 = true;
                    self.advance();
                }
            }
        }
        if self.children.iter().all(|(_, _, done)| *done) {
            None
        } else {
            // At least one child is live; recurse once more.
            self.next_slot()
        }
    }

    fn fill(&mut self, buf: &mut SlotBuf) -> usize {
        // Sub-budget the buffer so each child's own `fill` pulls exactly
        // its remaining weight quota (or the outer budget, whichever is
        // smaller), preserving the weighted round-robin slot order while
        // letting the child run its fused loop. A child is retired only
        // when its `fill` pulls nothing.
        let mut pulled = 0;
        while buf.has_room() {
            if self.children[self.cur].2 || self.left == 0 {
                if self.children.iter().all(|(_, _, done)| *done) {
                    break;
                }
                self.advance();
                continue;
            }
            let take = (self.left as usize).min(buf.room());
            let outer = buf.set_cap(buf.pulled() + take);
            let got = self.children[self.cur].0.fill(buf);
            buf.set_cap(outer);
            pulled += got;
            self.left -= got as u32;
            if got == 0 {
                self.children[self.cur].2 = true;
            }
        }
        pulled
    }
}

/// Pure compute: `total` instructions emitted in `batch`-sized slots.
/// Models CPU-bound codes (swaptions, deepsjeng's search).
pub struct ComputeStream {
    remaining: u64,
    batch: u32,
}

impl ComputeStream {
    /// `total` compute instructions in `batch`-sized slots.
    pub fn new(total: u64, batch: u32) -> Self {
        assert!(batch > 0);
        ComputeStream { remaining: total, batch }
    }
}

impl SlotStream for ComputeStream {
    fn next_slot(&mut self) -> Option<Slot> {
        if self.remaining == 0 {
            return None;
        }
        let n = self.remaining.min(u64::from(self.batch)) as u32;
        self.remaining -= u64::from(n);
        Some(Slot::Compute(n))
    }

    fn fill(&mut self, buf: &mut SlotBuf) -> usize {
        // The slot sequence is `batch, batch, …, batch, tail` — a run of
        // whole batches plus at most one partial slot. `push_run` appends
        // the run in O(1) instead of one `push` per slot.
        let mut pulled = 0;
        let unit = u64::from(self.batch);
        while buf.has_room() && self.remaining > 0 {
            let whole = self.remaining / unit;
            let take = whole.min(buf.room() as u64).min(u64::from(u32::MAX));
            if take > 0 {
                buf.push_run(self.batch, take as u32);
                self.remaining -= take * unit;
                pulled += take as usize;
            } else {
                buf.push(Slot::Compute(self.remaining as u32));
                self.remaining = 0;
                pulled += 1;
            }
        }
        pulled
    }
}

/// Iteration loop with a per-iteration synchronization cost.
///
/// Each iteration emits the stream built by `body(iter)` followed by a
/// `Compute` slot of `barrier_cost` cycles — the model of
/// `kmp_hyper_barrier_release` spinning that makes ATIS scale at 1× in the
/// paper (80% of cycles in the barrier above 2 threads). The caller makes
/// `barrier_cost` grow with the thread count.
pub struct BarrierLoop {
    body: Box<dyn FnMut(u64) -> Box<dyn SlotStream> + Send>,
    iterations: u64,
    iter: u64,
    barrier_cost: u64,
    current: Option<Box<dyn SlotStream>>,
    in_barrier: u64,
}

impl BarrierLoop {
    /// `iterations` runs of `body(iter)`, each followed by `barrier_cost` cycles.
    pub fn new(
        iterations: u64,
        barrier_cost: u64,
        body: Box<dyn FnMut(u64) -> Box<dyn SlotStream> + Send>,
    ) -> Self {
        BarrierLoop { body, iterations, iter: 0, barrier_cost, current: None, in_barrier: 0 }
    }
}

impl SlotStream for BarrierLoop {
    fn next_slot(&mut self) -> Option<Slot> {
        loop {
            if self.in_barrier > 0 {
                let n = self.in_barrier.min(u64::from(u32::MAX)) as u32;
                self.in_barrier -= u64::from(n);
                return Some(Slot::Compute(n));
            }
            if let Some(cur) = self.current.as_mut() {
                if let Some(s) = cur.next_slot() {
                    return Some(s);
                }
                self.current = None;
                self.in_barrier = self.barrier_cost;
                continue;
            }
            if self.iter >= self.iterations {
                return None;
            }
            self.current = Some((self.body)(self.iter));
            self.iter += 1;
        }
    }

    fn fill(&mut self, buf: &mut SlotBuf) -> usize {
        let mut pulled = 0;
        while buf.has_room() {
            if self.in_barrier > 0 {
                let n = self.in_barrier.min(u64::from(u32::MAX)) as u32;
                self.in_barrier -= u64::from(n);
                buf.push(Slot::Compute(n));
                pulled += 1;
                continue;
            }
            if let Some(cur) = self.current.as_mut() {
                let got = cur.fill(buf);
                pulled += got;
                if got == 0 {
                    self.current = None;
                    self.in_barrier = self.barrier_cost;
                }
                continue;
            }
            if self.iter >= self.iterations {
                break;
            }
            self.current = Some((self.body)(self.iter));
            self.iter += 1;
        }
        pulled
    }
}

/// Amdahl's-law work splitting: a serial section is *replicated* on every
/// thread (all threads spend its full time), while the parallel section is
/// divided. Under the simulator this yields exactly
/// `T(t) = serial + parallel / t`.
pub struct SerialParallel;

impl SerialParallel {
    /// Splits `total` work units with `serial_pml` ‰ serial fraction for a
    /// run with `threads` threads. Returns `(serial_units, parallel_units_per_thread)`.
    pub fn shares(total: u64, serial_pml: u16, threads: usize) -> (u64, u64) {
        assert!(serial_pml <= 1000);
        assert!(threads > 0);
        let serial = total * u64::from(serial_pml) / 1000;
        let parallel = (total - serial) / threads as u64;
        (serial, parallel)
    }

    /// The ideal Amdahl speedup for the given serial fraction.
    pub fn ideal_speedup(serial_pml: u16, threads: usize) -> f64 {
        let f = f64::from(serial_pml) / 1000.0;
        1.0 / (f + (1.0 - f) / threads as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::{collect_slots, VecStream};

    fn compute_vec(vals: &[u32]) -> Box<dyn SlotStream> {
        Box::new(VecStream::new(vals.iter().map(|&v| Slot::Compute(v)).collect()))
    }

    #[test]
    fn chain_runs_parts_in_order() {
        let mut c = Chain::new(vec![compute_vec(&[1, 2]), compute_vec(&[3])]);
        let slots = collect_slots(&mut c, 10);
        assert_eq!(slots, vec![Slot::Compute(1), Slot::Compute(2), Slot::Compute(3)]);
    }

    #[test]
    fn chain_skips_empty_parts() {
        let mut c = Chain::new(vec![compute_vec(&[]), compute_vec(&[7]), compute_vec(&[])]);
        assert_eq!(collect_slots(&mut c, 10), vec![Slot::Compute(7)]);
    }

    #[test]
    fn interleave_respects_weights() {
        let mut i = Interleave::new(vec![(compute_vec(&[1, 1, 1, 1]), 2), (compute_vec(&[9, 9]), 1)]);
        let slots = collect_slots(&mut i, 10);
        assert_eq!(
            slots,
            vec![
                Slot::Compute(1),
                Slot::Compute(1),
                Slot::Compute(9),
                Slot::Compute(1),
                Slot::Compute(1),
                Slot::Compute(9),
            ]
        );
    }

    #[test]
    fn interleave_drains_longer_child() {
        let mut i = Interleave::new(vec![(compute_vec(&[1]), 1), (compute_vec(&[2, 2, 2]), 1)]);
        let slots = collect_slots(&mut i, 10);
        assert_eq!(slots.len(), 4);
        assert_eq!(slots.iter().filter(|s| **s == Slot::Compute(2)).count(), 3);
    }

    #[test]
    fn compute_stream_batches() {
        let mut c = ComputeStream::new(10, 4);
        let slots = collect_slots(&mut c, 10);
        assert_eq!(slots, vec![Slot::Compute(4), Slot::Compute(4), Slot::Compute(2)]);
    }

    #[test]
    fn barrier_loop_inserts_barriers() {
        let mut b = BarrierLoop::new(2, 100, Box::new(|_| {
            Box::new(VecStream::new(vec![Slot::Compute(1)])) as Box<dyn SlotStream>
        }));
        let slots = collect_slots(&mut b, 10);
        assert_eq!(
            slots,
            vec![Slot::Compute(1), Slot::Compute(100), Slot::Compute(1), Slot::Compute(100)]
        );
    }

    #[test]
    fn barrier_loop_zero_iterations_is_empty() {
        let mut b = BarrierLoop::new(0, 100, Box::new(|_| {
            Box::new(VecStream::new(vec![Slot::Compute(1)])) as Box<dyn SlotStream>
        }));
        assert!(collect_slots(&mut b, 10).is_empty());
    }

    #[test]
    fn serial_parallel_shares_sum_correctly() {
        let (s, p) = SerialParallel::shares(1000, 250, 4);
        assert_eq!(s, 250);
        assert_eq!(p, 187); // 750 / 4
        let (s0, p0) = SerialParallel::shares(1000, 0, 2);
        assert_eq!(s0, 0);
        assert_eq!(p0, 500);
    }

    #[test]
    fn serial_parallel_ideal_speedup_matches_amdahl() {
        // f = 0.5, 8 threads: 1 / (0.5 + 0.5/8) = 1.777...
        let s = SerialParallel::ideal_speedup(500, 8);
        assert!((s - 1.7777).abs() < 1e-3);
        assert!((SerialParallel::ideal_speedup(0, 8) - 8.0).abs() < 1e-9);
    }
}
