//! The [`Slot`] event type and the [`SlotStream`] trait.

use std::sync::Arc;

/// One unit of simulated work on a core.
///
/// A slot is either a batch of `n` single-cycle compute instructions or a
/// single memory access. Memory accesses carry a synthetic `pc` (a small
/// integer identifying the *access site* in the workload model) which the
/// IP-stride prefetcher uses the same way real hardware uses the program
/// counter of the load instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    /// `n` back-to-back ALU/FP instructions, each retiring in one cycle.
    Compute(u32),
    /// A load from `addr`.
    ///
    /// `dep` marks the load as *data-dependent* on earlier outstanding
    /// loads (e.g. pointer chasing, or indexing an array with a value that
    /// was itself just loaded). The core model drains all outstanding
    /// misses before issuing a dependent load, which removes memory-level
    /// parallelism and makes the workload latency-bound — the key
    /// behavioural difference between graph traversal and streaming.
    Load {
        /// Byte address accessed.
        addr: u64,
        /// Synthetic access-site id.
        pc: u32,
        /// Data-dependent on earlier outstanding loads.
        dep: bool,
    },
    /// A store to `addr`. Stores retire through a write buffer and never
    /// block the core, but they do generate cache fills and write-back
    /// traffic.
    Store {
        /// Byte address written.
        addr: u64,
        /// Synthetic access-site id.
        pc: u32,
    },
}

impl Slot {
    /// Number of retired instructions this slot represents.
    #[inline]
    pub fn instructions(&self) -> u64 {
        match self {
            Slot::Compute(n) => u64::from(*n),
            Slot::Load { .. } | Slot::Store { .. } => 1,
        }
    }

    /// The accessed address, if this is a memory slot.
    #[inline]
    pub fn addr(&self) -> Option<u64> {
        match self {
            Slot::Compute(_) => None,
            Slot::Load { addr, .. } | Slot::Store { addr, .. } => Some(*addr),
        }
    }

    /// True if this slot is a load or a store.
    #[inline]
    pub fn is_memory(&self) -> bool {
        !matches!(self, Slot::Compute(_))
    }
}

/// A lazily produced sequence of [`Slot`]s for one simulated thread.
///
/// Streams must be deterministic: two streams built from the same factory
/// with the same [`StreamParams`] yield identical slot sequences.
pub trait SlotStream: Send {
    /// The next slot, or `None` when the thread's work is finished.
    fn next_slot(&mut self) -> Option<Slot>;
}

/// Parameters identifying one thread of one workload instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamParams {
    /// Thread index within the workload, `0..threads`.
    pub thread: usize,
    /// Total number of threads the workload runs with.
    pub threads: usize,
    /// Base of the address region this workload instance owns. Co-running
    /// instances get disjoint regions so they never share data, but their
    /// lines still compete for the same cache sets.
    pub base: u64,
    /// Seed for any randomized pattern. Trials vary the seed.
    pub seed: u64,
}

impl StreamParams {
    /// Convenience constructor for a solo single-threaded stream.
    pub fn solo(base: u64, seed: u64) -> Self {
        StreamParams { thread: 0, threads: 1, base, seed }
    }
}

/// Builds the per-thread slot streams of a workload.
///
/// The factory is the *program*; each [`SlotStream`] it builds is one
/// execution of one thread. Background applications are re-built and
/// re-run in a loop until the foreground application finishes.
pub trait StreamFactory: Send + Sync {
    /// Builds one thread's slot stream.
    fn build(&self, params: &StreamParams) -> Box<dyn SlotStream>;
}

impl<F> StreamFactory for F
where
    F: Fn(&StreamParams) -> Box<dyn SlotStream> + Send + Sync,
{
    fn build(&self, params: &StreamParams) -> Box<dyn SlotStream> {
        self(params)
    }
}

/// Wraps a factory so the produced stream restarts forever: the model of a
/// *background* application that is re-launched until the foreground task
/// completes (Sec. V of the paper).
pub struct LoopingStream {
    factory: Arc<dyn StreamFactory>,
    params: StreamParams,
    current: Box<dyn SlotStream>,
    /// Completed executions of the inner stream (for bg progress metrics).
    iterations: u64,
    /// The factory produced an empty stream — the thread has no work at
    /// this scale (e.g. fewer tiles than threads), so it idles instead of
    /// rebuilding forever.
    idle: bool,
}

/// Instructions per idle batch of a thread whose stream is empty: models
/// a worker spinning in its runtime with no shard assigned.
const IDLE_BATCH: u32 = 4096;

impl LoopingStream {
    /// Builds the first inner stream and loops it on exhaustion.
    pub fn new(factory: Arc<dyn StreamFactory>, params: StreamParams) -> Self {
        let current = factory.build(&params);
        LoopingStream { factory, params, current, iterations: 0, idle: false }
    }

    /// Number of times the inner stream has been restarted.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }
}

impl SlotStream for LoopingStream {
    fn next_slot(&mut self) -> Option<Slot> {
        if self.idle {
            return Some(Slot::Compute(IDLE_BATCH));
        }
        if let Some(s) = self.current.next_slot() {
            return Some(s);
        }
        self.iterations += 1;
        // Vary the seed across restarts so randomized background
        // patterns do not replay the exact same trace, mirroring a
        // re-launched process.
        let mut p = self.params;
        p.seed = p.seed.wrapping_add(self.iterations);
        self.current = self.factory.build(&p);
        if let Some(s) = self.current.next_slot() {
            return Some(s);
        }
        // The rebuilt stream is empty too: this thread has no work at the
        // current scale. Without a fallback slot the restart loop would
        // spin forever without advancing simulated time.
        self.idle = true;
        self.iterations -= 1;
        Some(Slot::Compute(IDLE_BATCH))
    }
}

/// A stream backed by a pre-materialized vector of slots. Mostly useful in
/// tests and for tiny workload phases.
pub struct VecStream {
    slots: Vec<Slot>,
    pos: usize,
}

impl VecStream {
    /// A stream yielding `slots` in order.
    pub fn new(slots: Vec<Slot>) -> Self {
        VecStream { slots, pos: 0 }
    }
}

impl SlotStream for VecStream {
    fn next_slot(&mut self) -> Option<Slot> {
        let s = self.slots.get(self.pos).copied();
        if s.is_some() {
            self.pos += 1;
        }
        s
    }
}

/// Drains a stream into a vector. Test/diagnostic helper; panics if the
/// stream exceeds `cap` slots (guards against accidentally draining a
/// looping stream).
pub fn collect_slots(stream: &mut dyn SlotStream, cap: usize) -> Vec<Slot> {
    let mut out = Vec::new();
    while let Some(s) = stream.next_slot() {
        out.push(s);
        assert!(out.len() <= cap, "stream exceeded {cap} slots");
    }
    out
}

/// Summarizes a finite stream: (instructions, memory accesses, loads, stores).
pub fn stream_census(stream: &mut dyn SlotStream, cap: usize) -> (u64, u64, u64, u64) {
    let (mut instr, mut mem, mut loads, mut stores) = (0u64, 0u64, 0u64, 0u64);
    let mut n = 0usize;
    while let Some(s) = stream.next_slot() {
        n += 1;
        assert!(n <= cap, "stream exceeded {cap} slots");
        instr += s.instructions();
        match s {
            Slot::Load { .. } => {
                mem += 1;
                loads += 1;
            }
            Slot::Store { .. } => {
                mem += 1;
                stores += 1;
            }
            Slot::Compute(_) => {}
        }
    }
    (instr, mem, loads, stores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_instruction_accounting() {
        assert_eq!(Slot::Compute(17).instructions(), 17);
        assert_eq!(Slot::Load { addr: 0, pc: 0, dep: false }.instructions(), 1);
        assert_eq!(Slot::Store { addr: 0, pc: 0 }.instructions(), 1);
    }

    #[test]
    fn slot_addr_and_kind() {
        assert_eq!(Slot::Compute(1).addr(), None);
        assert!(!Slot::Compute(1).is_memory());
        let l = Slot::Load { addr: 64, pc: 3, dep: true };
        assert_eq!(l.addr(), Some(64));
        assert!(l.is_memory());
    }

    #[test]
    fn vec_stream_yields_in_order_then_ends() {
        let slots = vec![
            Slot::Compute(2),
            Slot::Load { addr: 128, pc: 0, dep: false },
            Slot::Store { addr: 192, pc: 1 },
        ];
        let mut s = VecStream::new(slots.clone());
        assert_eq!(s.next_slot(), Some(slots[0]));
        assert_eq!(s.next_slot(), Some(slots[1]));
        assert_eq!(s.next_slot(), Some(slots[2]));
        assert_eq!(s.next_slot(), None);
        assert_eq!(s.next_slot(), None);
    }

    #[test]
    fn looping_stream_restarts() {
        let factory: Arc<dyn StreamFactory> = Arc::new(|_p: &StreamParams| {
            Box::new(VecStream::new(vec![Slot::Compute(1), Slot::Compute(2)]))
                as Box<dyn SlotStream>
        });
        let mut s = LoopingStream::new(factory, StreamParams::solo(0, 0));
        for _ in 0..10 {
            assert_eq!(s.next_slot(), Some(Slot::Compute(1)));
            assert_eq!(s.next_slot(), Some(Slot::Compute(2)));
        }
        assert_eq!(s.iterations(), 9);
    }

    #[test]
    fn looping_stream_with_empty_inner_stream_idles_instead_of_spinning() {
        // A thread whose work share rounds to zero builds an empty stream
        // every time; the looping wrapper must still make progress.
        let factory: Arc<dyn StreamFactory> = Arc::new(|_p: &StreamParams| {
            Box::new(VecStream::new(vec![])) as Box<dyn SlotStream>
        });
        let mut s = LoopingStream::new(factory, StreamParams::solo(0, 0));
        for _ in 0..100 {
            match s.next_slot() {
                Some(Slot::Compute(n)) => assert!(n > 0),
                other => panic!("idle background thread must yield compute slots, got {other:?}"),
            }
        }
        assert_eq!(s.iterations(), 0, "empty rebuilds are not completed iterations");
    }

    #[test]
    fn closure_factory_builds_streams() {
        let f = |p: &StreamParams| {
            Box::new(VecStream::new(vec![Slot::Compute(p.thread as u32 + 1)]))
                as Box<dyn SlotStream>
        };
        let mut s = f.build(&StreamParams { thread: 4, threads: 8, base: 0, seed: 0 });
        assert_eq!(s.next_slot(), Some(Slot::Compute(5)));
    }

    #[test]
    fn census_counts_kinds() {
        let mut s = VecStream::new(vec![
            Slot::Compute(10),
            Slot::Load { addr: 0, pc: 0, dep: false },
            Slot::Load { addr: 64, pc: 0, dep: false },
            Slot::Store { addr: 0, pc: 1 },
        ]);
        let (instr, mem, loads, stores) = stream_census(&mut s, 100);
        assert_eq!(instr, 13);
        assert_eq!(mem, 3);
        assert_eq!(loads, 2);
        assert_eq!(stores, 1);
    }
}
