//! The [`Slot`] event type and the [`SlotStream`] trait.

use std::sync::Arc;

/// One unit of simulated work on a core.
///
/// A slot is either a batch of `n` single-cycle compute instructions or a
/// single memory access. Memory accesses carry a synthetic `pc` (a small
/// integer identifying the *access site* in the workload model) which the
/// IP-stride prefetcher uses the same way real hardware uses the program
/// counter of the load instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    /// `n` back-to-back ALU/FP instructions, each retiring in one cycle.
    Compute(u32),
    /// A load from `addr`.
    ///
    /// `dep` marks the load as *data-dependent* on earlier outstanding
    /// loads (e.g. pointer chasing, or indexing an array with a value that
    /// was itself just loaded). The core model drains all outstanding
    /// misses before issuing a dependent load, which removes memory-level
    /// parallelism and makes the workload latency-bound — the key
    /// behavioural difference between graph traversal and streaming.
    Load {
        /// Byte address accessed.
        addr: u64,
        /// Synthetic access-site id.
        pc: u32,
        /// Data-dependent on earlier outstanding loads.
        dep: bool,
    },
    /// A store to `addr`. Stores retire through a write buffer and never
    /// block the core, but they do generate cache fills and write-back
    /// traffic.
    Store {
        /// Byte address written.
        addr: u64,
        /// Synthetic access-site id.
        pc: u32,
    },
}

impl Slot {
    /// Number of retired instructions this slot represents.
    #[inline]
    pub fn instructions(&self) -> u64 {
        match self {
            Slot::Compute(n) => u64::from(*n),
            Slot::Load { .. } | Slot::Store { .. } => 1,
        }
    }

    /// The accessed address, if this is a memory slot.
    #[inline]
    pub fn addr(&self) -> Option<u64> {
        match self {
            Slot::Compute(_) => None,
            Slot::Load { addr, .. } | Slot::Store { addr, .. } => Some(*addr),
        }
    }

    /// True if this slot is a load or a store.
    #[inline]
    pub fn is_memory(&self) -> bool {
        !matches!(self, Slot::Compute(_))
    }
}

/// Source slots pulled per [`SlotStream::fill`] call: one virtual call
/// through a `Box<dyn SlotStream>` amortizes over this many slots. 256
/// entries keep a core's buffer a few KiB — resident in a host L1/L2 —
/// while making generator dispatch invisible in the engine profile.
pub const FILL_BATCH: usize = 256;

/// One entry of a [`SlotBuf`]: either a single slot, or a *run* of equal
/// nonzero compute slots coalesced at generation time.
///
/// A run stands for `count` repetitions of `Slot::Compute(unit)` and must
/// be consumed with the same per-slot atomicity the expanded sequence
/// would have (each unit checked against the quantum deadline before it
/// retires, overshooting by at most `unit - 1` cycles). Keeping the unit
/// explicit is what lets the engine split a run at a quantum boundary
/// with a closed form while staying byte-identical to per-slot
/// consumption — merging *unequal* computes into one atomic slot would
/// shift pause times and diverge on co-runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BufEntry {
    /// A single slot, passed through unchanged.
    One(Slot),
    /// `count` adjacent `Slot::Compute(unit)` slots, `unit > 0`.
    ComputeRun {
        /// Instructions per coalesced slot.
        unit: u32,
        /// Number of coalesced slots.
        count: u32,
    },
}

impl BufEntry {
    /// Source slots this entry stands for.
    #[inline]
    pub fn source_slots(&self) -> usize {
        match self {
            BufEntry::One(_) => 1,
            BufEntry::ComputeRun { count, .. } => *count as usize,
        }
    }
}

/// A generation buffer filled by [`SlotStream::fill`]: a contiguous batch
/// of upcoming slots for one simulated thread, with adjacent equal
/// compute slots coalesced into [`BufEntry::ComputeRun`]s.
///
/// The buffer budgets *source* slots (what the stream produced), not
/// entries: a compute-heavy stream whose slots all coalesce still stops
/// after [`FILL_BATCH`] pulls, so `fill` terminates on infinite streams.
#[derive(Debug, Default)]
pub struct SlotBuf {
    entries: Vec<BufEntry>,
    /// Source slots pushed since the last `clear`.
    pulled: usize,
    /// Source-slot budget; `push` beyond it is allowed but `has_room`
    /// turns false, which is what every `fill` loop polls.
    cap: usize,
}

impl SlotBuf {
    /// An empty buffer with the default [`FILL_BATCH`] budget.
    pub fn new() -> Self {
        SlotBuf { entries: Vec::with_capacity(FILL_BATCH), pulled: 0, cap: FILL_BATCH }
    }

    /// Clears entries and restores the default budget.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.pulled = 0;
        self.cap = FILL_BATCH;
    }

    /// True while the source-slot budget has room.
    #[inline]
    pub fn has_room(&self) -> bool {
        self.pulled < self.cap
    }

    /// Source slots pushed since the last `clear`.
    #[inline]
    pub fn pulled(&self) -> usize {
        self.pulled
    }

    /// Source slots left in the budget. Fused `fill` loops use this to
    /// size a run or an unrolled group up front instead of polling
    /// `has_room` per slot.
    #[inline]
    pub fn room(&self) -> usize {
        self.cap.saturating_sub(self.pulled)
    }

    /// Replaces the source-slot budget, returning the previous value.
    /// Composite generators use this to sub-budget a child's `fill`
    /// (e.g. an interleave pulling `k` slots per turn) and restore the
    /// outer budget afterwards.
    pub fn set_cap(&mut self, cap: usize) -> usize {
        std::mem::replace(&mut self.cap, cap)
    }

    /// Number of buffered entries (coalesced, not source slots).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `i`-th entry, if buffered.
    #[inline]
    pub fn entry(&self, i: usize) -> Option<BufEntry> {
        self.entries.get(i).copied()
    }

    /// Overwrites the `i`-th entry (the engine shrinks a partially
    /// consumed compute run in place).
    #[inline]
    pub fn set_entry(&mut self, i: usize, e: BufEntry) {
        self.entries[i] = e;
    }

    /// Appends one source slot, coalescing it into the previous entry
    /// when it is an equal nonzero compute slot. `Compute(0)` is never
    /// coalesced: the engine's livelock guard counts zero-cost slots
    /// individually.
    #[inline]
    pub fn push(&mut self, s: Slot) {
        self.pulled += 1;
        if let Slot::Compute(n) = s {
            if n > 0 {
                if let Some(last) = self.entries.last_mut() {
                    match last {
                        BufEntry::ComputeRun { unit, count }
                            if *unit == n && *count < u32::MAX =>
                        {
                            *count += 1;
                            return;
                        }
                        BufEntry::One(Slot::Compute(m)) if *m == n => {
                            *last = BufEntry::ComputeRun { unit: n, count: 2 };
                            return;
                        }
                        _ => {}
                    }
                }
            }
        }
        self.entries.push(BufEntry::One(s));
    }

    /// Appends `count` repetitions of `Compute(unit)` in O(1), counting
    /// them against the source-slot budget. Generators that emit long
    /// uniform compute phases use this instead of `count` pushes.
    pub fn push_run(&mut self, unit: u32, count: u32) {
        if count == 0 {
            return;
        }
        self.pulled += count as usize;
        if unit == 0 {
            // Zero-cost slots stay individual (livelock-guard semantics).
            for _ in 0..count {
                self.entries.push(BufEntry::One(Slot::Compute(0)));
            }
            return;
        }
        match self.entries.last_mut() {
            Some(BufEntry::ComputeRun { unit: u, count: c }) if *u == unit => {
                if let Some(sum) = c.checked_add(count) {
                    *c = sum;
                    return;
                }
            }
            Some(last @ BufEntry::One(Slot::Compute(_)))
                if *last == BufEntry::One(Slot::Compute(unit)) && count < u32::MAX =>
            {
                *last = BufEntry::ComputeRun { unit, count: count + 1 };
                return;
            }
            _ => {}
        }
        if count == 1 {
            self.entries.push(BufEntry::One(Slot::Compute(unit)));
        } else {
            self.entries.push(BufEntry::ComputeRun { unit, count });
        }
    }

    /// Expands the buffered entries back into the source slot sequence.
    /// Test/diagnostic helper: `fill` + `iter_slots` must reproduce the
    /// exact sequence `next_slot` would have yielded.
    pub fn iter_slots(&self) -> impl Iterator<Item = Slot> + '_ {
        self.entries.iter().flat_map(|e| {
            let (slot, n) = match *e {
                BufEntry::One(s) => (s, 1),
                BufEntry::ComputeRun { unit, count } => (Slot::Compute(unit), count),
            };
            std::iter::repeat_n(slot, n as usize)
        })
    }
}

/// A lazily produced sequence of [`Slot`]s for one simulated thread.
///
/// Streams must be deterministic: two streams built from the same factory
/// with the same [`StreamParams`] yield identical slot sequences.
pub trait SlotStream: Send {
    /// The next slot, or `None` when the thread's work is finished.
    fn next_slot(&mut self) -> Option<Slot>;

    /// Appends upcoming slots to `buf` until the buffer's source-slot
    /// budget is exhausted or the stream ends; returns the number of
    /// source slots appended. A return of `0` with room left means the
    /// stream is exhausted.
    ///
    /// The expanded buffer contents must equal what repeated `next_slot`
    /// calls would have yielded — `fill` is a batching transport, never a
    /// resequencing one. The default implementation loops `next_slot`
    /// (statically dispatched on `Self`, so one virtual `fill` call
    /// through a `Box<dyn SlotStream>` already amortizes the vtable cost
    /// over the whole batch); hot generators override it with a fused
    /// loop. The engine calls `fill` only on an empty (cleared) buffer,
    /// which restart-sensitive wrappers ([`LoopingStream`]) rely on.
    fn fill(&mut self, buf: &mut SlotBuf) -> usize {
        let mut pulled = 0;
        while buf.has_room() {
            match self.next_slot() {
                Some(s) => {
                    buf.push(s);
                    pulled += 1;
                }
                None => break,
            }
        }
        pulled
    }
}

/// Parameters identifying one thread of one workload instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamParams {
    /// Thread index within the workload, `0..threads`.
    pub thread: usize,
    /// Total number of threads the workload runs with.
    pub threads: usize,
    /// Base of the address region this workload instance owns. Co-running
    /// instances get disjoint regions so they never share data, but their
    /// lines still compete for the same cache sets.
    pub base: u64,
    /// Seed for any randomized pattern. Trials vary the seed.
    pub seed: u64,
}

impl StreamParams {
    /// Convenience constructor for a solo single-threaded stream.
    pub fn solo(base: u64, seed: u64) -> Self {
        StreamParams { thread: 0, threads: 1, base, seed }
    }
}

/// Builds the per-thread slot streams of a workload.
///
/// The factory is the *program*; each [`SlotStream`] it builds is one
/// execution of one thread. Background applications are re-built and
/// re-run in a loop until the foreground application finishes.
pub trait StreamFactory: Send + Sync {
    /// Builds one thread's slot stream.
    fn build(&self, params: &StreamParams) -> Box<dyn SlotStream>;
}

impl<F> StreamFactory for F
where
    F: Fn(&StreamParams) -> Box<dyn SlotStream> + Send + Sync,
{
    fn build(&self, params: &StreamParams) -> Box<dyn SlotStream> {
        self(params)
    }
}

/// Wraps a factory so the produced stream restarts forever: the model of a
/// *background* application that is re-launched until the foreground task
/// completes (Sec. V of the paper).
pub struct LoopingStream {
    factory: Arc<dyn StreamFactory>,
    params: StreamParams,
    current: Box<dyn SlotStream>,
    /// Completed executions of the inner stream (for bg progress metrics).
    iterations: u64,
    /// The factory produced an empty stream — the thread has no work at
    /// this scale (e.g. fewer tiles than threads), so it idles instead of
    /// rebuilding forever.
    idle: bool,
}

/// Instructions per idle batch of a thread whose stream is empty: models
/// a worker spinning in its runtime with no shard assigned.
const IDLE_BATCH: u32 = 4096;

impl LoopingStream {
    /// Builds the first inner stream and loops it on exhaustion.
    pub fn new(factory: Arc<dyn StreamFactory>, params: StreamParams) -> Self {
        let current = factory.build(&params);
        LoopingStream { factory, params, current, iterations: 0, idle: false }
    }

    /// Number of times the inner stream has been restarted.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }
}

impl SlotStream for LoopingStream {
    fn next_slot(&mut self) -> Option<Slot> {
        if self.idle {
            return Some(Slot::Compute(IDLE_BATCH));
        }
        if let Some(s) = self.current.next_slot() {
            return Some(s);
        }
        self.iterations += 1;
        // Vary the seed across restarts so randomized background
        // patterns do not replay the exact same trace, mirroring a
        // re-launched process.
        let mut p = self.params;
        p.seed = p.seed.wrapping_add(self.iterations);
        self.current = self.factory.build(&p);
        if let Some(s) = self.current.next_slot() {
            return Some(s);
        }
        // The rebuilt stream is empty too: this thread has no work at the
        // current scale. Without a fallback slot the restart loop would
        // spin forever without advancing simulated time.
        self.idle = true;
        self.iterations -= 1;
        Some(Slot::Compute(IDLE_BATCH))
    }

    fn fill(&mut self, buf: &mut SlotBuf) -> usize {
        if self.idle {
            let mut pulled = 0;
            while buf.has_room() {
                buf.push(Slot::Compute(IDLE_BATCH));
                pulled += 1;
            }
            return pulled;
        }
        let mut pulled = self.current.fill(buf);
        while buf.has_room() {
            // Inner stream exhausted. Restart it only when the buffer is
            // empty: already-buffered slots may never be consumed (the
            // foreground can finish first), and `iterations()` must count
            // a restart exactly when its first slot is reached — which,
            // on an empty-buffer refill, is the very next slot the engine
            // consumes. Mid-buffer restarts would count too early and
            // diverge from per-slot consumption.
            if !buf.is_empty() {
                return pulled;
            }
            self.iterations += 1;
            let mut p = self.params;
            p.seed = p.seed.wrapping_add(self.iterations);
            self.current = self.factory.build(&p);
            let got = self.current.fill(buf);
            if got == 0 {
                // Rebuilt stream is empty too: idle, as in `next_slot`.
                self.idle = true;
                self.iterations -= 1;
                while buf.has_room() {
                    buf.push(Slot::Compute(IDLE_BATCH));
                    pulled += 1;
                }
                return pulled;
            }
            pulled += got;
        }
        pulled
    }
}

/// A stream backed by a pre-materialized vector of slots. Mostly useful in
/// tests and for tiny workload phases.
pub struct VecStream {
    slots: Vec<Slot>,
    pos: usize,
}

impl VecStream {
    /// A stream yielding `slots` in order.
    pub fn new(slots: Vec<Slot>) -> Self {
        VecStream { slots, pos: 0 }
    }
}

impl SlotStream for VecStream {
    fn next_slot(&mut self) -> Option<Slot> {
        let s = self.slots.get(self.pos).copied();
        if s.is_some() {
            self.pos += 1;
        }
        s
    }

    fn fill(&mut self, buf: &mut SlotBuf) -> usize {
        let mut pulled = 0;
        while buf.has_room() {
            match self.slots.get(self.pos).copied() {
                Some(s) => {
                    buf.push(s);
                    self.pos += 1;
                    pulled += 1;
                }
                None => break,
            }
        }
        pulled
    }
}

/// Drains a stream into a vector. Test/diagnostic helper; panics if the
/// stream exceeds `cap` slots (guards against accidentally draining a
/// looping stream).
pub fn collect_slots(stream: &mut dyn SlotStream, cap: usize) -> Vec<Slot> {
    let mut out = Vec::new();
    while let Some(s) = stream.next_slot() {
        out.push(s);
        assert!(out.len() <= cap, "stream exceeded {cap} slots");
    }
    out
}

/// Summarizes a finite stream: (instructions, memory accesses, loads, stores).
pub fn stream_census(stream: &mut dyn SlotStream, cap: usize) -> (u64, u64, u64, u64) {
    let (mut instr, mut mem, mut loads, mut stores) = (0u64, 0u64, 0u64, 0u64);
    let mut n = 0usize;
    while let Some(s) = stream.next_slot() {
        n += 1;
        assert!(n <= cap, "stream exceeded {cap} slots");
        instr += s.instructions();
        match s {
            Slot::Load { .. } => {
                mem += 1;
                loads += 1;
            }
            Slot::Store { .. } => {
                mem += 1;
                stores += 1;
            }
            Slot::Compute(_) => {}
        }
    }
    (instr, mem, loads, stores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_instruction_accounting() {
        assert_eq!(Slot::Compute(17).instructions(), 17);
        assert_eq!(Slot::Load { addr: 0, pc: 0, dep: false }.instructions(), 1);
        assert_eq!(Slot::Store { addr: 0, pc: 0 }.instructions(), 1);
    }

    #[test]
    fn slot_addr_and_kind() {
        assert_eq!(Slot::Compute(1).addr(), None);
        assert!(!Slot::Compute(1).is_memory());
        let l = Slot::Load { addr: 64, pc: 3, dep: true };
        assert_eq!(l.addr(), Some(64));
        assert!(l.is_memory());
    }

    #[test]
    fn vec_stream_yields_in_order_then_ends() {
        let slots = vec![
            Slot::Compute(2),
            Slot::Load { addr: 128, pc: 0, dep: false },
            Slot::Store { addr: 192, pc: 1 },
        ];
        let mut s = VecStream::new(slots.clone());
        assert_eq!(s.next_slot(), Some(slots[0]));
        assert_eq!(s.next_slot(), Some(slots[1]));
        assert_eq!(s.next_slot(), Some(slots[2]));
        assert_eq!(s.next_slot(), None);
        assert_eq!(s.next_slot(), None);
    }

    #[test]
    fn looping_stream_restarts() {
        let factory: Arc<dyn StreamFactory> = Arc::new(|_p: &StreamParams| {
            Box::new(VecStream::new(vec![Slot::Compute(1), Slot::Compute(2)]))
                as Box<dyn SlotStream>
        });
        let mut s = LoopingStream::new(factory, StreamParams::solo(0, 0));
        for _ in 0..10 {
            assert_eq!(s.next_slot(), Some(Slot::Compute(1)));
            assert_eq!(s.next_slot(), Some(Slot::Compute(2)));
        }
        assert_eq!(s.iterations(), 9);
    }

    #[test]
    fn looping_stream_with_empty_inner_stream_idles_instead_of_spinning() {
        // A thread whose work share rounds to zero builds an empty stream
        // every time; the looping wrapper must still make progress.
        let factory: Arc<dyn StreamFactory> = Arc::new(|_p: &StreamParams| {
            Box::new(VecStream::new(vec![])) as Box<dyn SlotStream>
        });
        let mut s = LoopingStream::new(factory, StreamParams::solo(0, 0));
        for _ in 0..100 {
            match s.next_slot() {
                Some(Slot::Compute(n)) => assert!(n > 0),
                other => panic!("idle background thread must yield compute slots, got {other:?}"),
            }
        }
        assert_eq!(s.iterations(), 0, "empty rebuilds are not completed iterations");
    }

    #[test]
    fn slotbuf_coalesces_equal_nonzero_computes() {
        let mut buf = SlotBuf::new();
        buf.push(Slot::Compute(5));
        buf.push(Slot::Compute(5));
        buf.push(Slot::Compute(5));
        buf.push(Slot::Compute(3));
        buf.push(Slot::Load { addr: 64, pc: 0, dep: false });
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.entry(0), Some(BufEntry::ComputeRun { unit: 5, count: 3 }));
        assert_eq!(buf.entry(1), Some(BufEntry::One(Slot::Compute(3))));
        assert_eq!(buf.pulled(), 5);
        let expanded: Vec<Slot> = buf.iter_slots().collect();
        assert_eq!(
            expanded,
            vec![
                Slot::Compute(5),
                Slot::Compute(5),
                Slot::Compute(5),
                Slot::Compute(3),
                Slot::Load { addr: 64, pc: 0, dep: false },
            ]
        );
    }

    #[test]
    fn slotbuf_never_coalesces_zero_cost_slots() {
        // The engine's livelock guard counts Compute(0) slots one by one.
        let mut buf = SlotBuf::new();
        buf.push(Slot::Compute(0));
        buf.push(Slot::Compute(0));
        buf.push_run(0, 3);
        assert_eq!(buf.len(), 5);
        assert!(buf.iter_slots().all(|s| s == Slot::Compute(0)));
    }

    #[test]
    fn slotbuf_push_run_merges_with_tail() {
        let mut buf = SlotBuf::new();
        buf.push(Slot::Compute(7));
        buf.push_run(7, 10);
        buf.push_run(7, 2);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.entry(0), Some(BufEntry::ComputeRun { unit: 7, count: 13 }));
        assert_eq!(buf.pulled(), 13);
        buf.push_run(9, 1);
        assert_eq!(buf.entry(1), Some(BufEntry::One(Slot::Compute(9))));
    }

    #[test]
    fn slotbuf_budget_bounds_source_slots_not_entries() {
        // An infinite uniform compute stream coalesces into one entry but
        // must still stop at the source budget.
        struct Forever;
        impl SlotStream for Forever {
            fn next_slot(&mut self) -> Option<Slot> {
                Some(Slot::Compute(4))
            }
        }
        let mut buf = SlotBuf::new();
        let pulled = Forever.fill(&mut buf);
        assert_eq!(pulled, FILL_BATCH);
        assert_eq!(buf.len(), 1);
        assert!(!buf.has_room());
    }

    #[test]
    fn slotbuf_sub_budget_restores() {
        let mut buf = SlotBuf::new();
        let old = buf.set_cap(2);
        assert_eq!(old, FILL_BATCH);
        let mut s = VecStream::new(vec![Slot::Compute(1); 10]);
        assert_eq!(s.fill(&mut buf), 2);
        buf.set_cap(old);
        assert!(buf.has_room());
        assert_eq!(s.fill(&mut buf), 8);
    }

    #[test]
    fn default_fill_matches_next_slot_sequence() {
        let slots = vec![
            Slot::Compute(2),
            Slot::Compute(2),
            Slot::Load { addr: 128, pc: 0, dep: true },
            Slot::Store { addr: 192, pc: 1 },
            Slot::Compute(0),
        ];
        let mut via_next = VecStream::new(slots.clone());
        let mut via_fill = VecStream::new(slots.clone());
        let mut buf = SlotBuf::new();
        assert_eq!(via_fill.fill(&mut buf), slots.len());
        let expanded: Vec<Slot> = buf.iter_slots().collect();
        let direct = collect_slots(&mut via_next, 100);
        assert_eq!(expanded, direct);
    }

    #[test]
    fn looping_fill_defers_restart_to_empty_buffer() {
        let factory: Arc<dyn StreamFactory> = Arc::new(|_p: &StreamParams| {
            Box::new(VecStream::new(vec![Slot::Compute(1), Slot::Compute(2)]))
                as Box<dyn SlotStream>
        });
        let mut s = LoopingStream::new(factory, StreamParams::solo(0, 0));
        // Each fill on an empty buffer hands out exactly one iteration's
        // slots: the inner stream exhausts mid-buffer, and restarting
        // right there would count an iteration whose slots the engine may
        // never consume. The restart happens on the *next* empty-buffer
        // fill, so `iterations()` still counts a restart exactly when its
        // first slot is handed out for immediate consumption.
        let mut buf = SlotBuf::new();
        assert_eq!(s.fill(&mut buf), 2);
        assert_eq!(s.iterations(), 0);
        buf.clear();
        assert_eq!(s.fill(&mut buf), 2);
        assert_eq!(s.iterations(), 1, "restart deferred to the empty-buffer refill");
        // A fill that drains the inner stream exactly at the sub-budget
        // boundary likewise defers: no premature restart.
        let mut buf3 = SlotBuf::new();
        buf3.set_cap(7);
        let mut s3 = LoopingStream::new(
            Arc::new(|_p: &StreamParams| {
                Box::new(VecStream::new(vec![Slot::Compute(3); 5])) as Box<dyn SlotStream>
            }) as Arc<dyn StreamFactory>,
            StreamParams::solo(0, 0),
        );
        assert_eq!(s3.fill(&mut buf3), 5, "partial batch, no premature restart");
        assert_eq!(s3.iterations(), 0);
    }

    #[test]
    fn looping_fill_idles_on_empty_inner_stream() {
        let factory: Arc<dyn StreamFactory> = Arc::new(|_p: &StreamParams| {
            Box::new(VecStream::new(vec![])) as Box<dyn SlotStream>
        });
        let mut s = LoopingStream::new(factory, StreamParams::solo(0, 0));
        let mut buf = SlotBuf::new();
        let pulled = s.fill(&mut buf);
        assert_eq!(pulled, FILL_BATCH, "idle fill must make progress");
        assert!(buf.iter_slots().all(|sl| sl == Slot::Compute(IDLE_BATCH)));
        assert_eq!(s.iterations(), 0, "empty rebuilds are not completed iterations");
    }

    #[test]
    fn closure_factory_builds_streams() {
        let f = |p: &StreamParams| {
            Box::new(VecStream::new(vec![Slot::Compute(p.thread as u32 + 1)]))
                as Box<dyn SlotStream>
        };
        let mut s = f.build(&StreamParams { thread: 4, threads: 8, base: 0, seed: 0 });
        assert_eq!(s.next_slot(), Some(Slot::Compute(5)));
    }

    #[test]
    fn census_counts_kinds() {
        let mut s = VecStream::new(vec![
            Slot::Compute(10),
            Slot::Load { addr: 0, pc: 0, dep: false },
            Slot::Load { addr: 64, pc: 0, dep: false },
            Slot::Store { addr: 0, pc: 1 },
        ]);
        let (instr, mem, loads, stores) = stream_census(&mut s, 100);
        assert_eq!(instr, 13);
        assert_eq!(mem, 3);
        assert_eq!(loads, 2);
        assert_eq!(stores, 1);
    }
}
