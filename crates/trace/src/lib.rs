//! # cochar-trace
//!
//! Access-slot streams: the contract between workload models and the
//! simulated machine.
//!
//! A workload thread is modelled as a sequence of [`Slot`]s — either a batch
//! of single-cycle compute instructions or a single memory access. The
//! machine simulator (`cochar-machine`) consumes one stream per simulated
//! core and charges cache/memory latencies to it.
//!
//! This crate also provides the library of *synthetic pattern generators*
//! (sequential, strided, random, pointer-chase, gather, stencil, blocked
//! GEMM, STREAM triad, …) from which the 25 application models in
//! `cochar-workloads` are composed, plus combinators (chains, mixes, phases,
//! Amdahl serial fractions, barrier loops) that shape thread scalability.
//!
//! Everything here is deterministic: generators are seeded explicitly and
//! use a local xorshift-based PRNG, so a given workload configuration always
//! produces the same address trace.

#![warn(missing_docs)]

pub mod gen;
pub mod layout;
pub mod rng;
pub mod slot;

pub use layout::{ArrayRef, Region};
pub use rng::Lcg;
pub use slot::{
    BufEntry, LoopingStream, Slot, SlotBuf, SlotStream, StreamFactory, StreamParams, VecStream,
    FILL_BATCH,
};
