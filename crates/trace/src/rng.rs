//! A tiny, fast, deterministic PRNG for hot-path address generation.
//!
//! Pattern generators sit on the simulator's hot path (one call per
//! simulated memory access), so we use a hand-rolled xorshift*/splitmix
//! generator instead of pulling `rand` into the inner loop. Statistical
//! quality is far beyond what address scrambling needs.

/// Splitmix64-seeded xorshift64* generator.
#[derive(Clone, Debug)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Creates a generator from a seed; any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // Splitmix64 step to spread low-entropy seeds across the state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Lcg { state: z | 1 }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift range reduction (Lemire); bias is negligible for
        // address scrambling purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Lcg::new(1);
        let mut b = Lcg::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Lcg::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, y);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Lcg::new(7);
        for bound in [1u64, 2, 3, 10, 1000, 1 << 40] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut r = Lcg::new(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear: {seen:?}");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Lcg::new(3);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 1000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean} should be near 0.5");
    }
}
