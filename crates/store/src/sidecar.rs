//! Checksummed sidecar files beside the journal.
//!
//! The fabric journals campaign metadata (`campaign.json`) and a ledger
//! log (`fabric.ledger.jsonl`) next to the run journal so a SIGKILLed
//! coordinator can be resumed. Those files share the journal's crash
//! model — append-only lines, each carrying its own checksum, torn tails
//! tolerated — but not its record codec, so the line framing lives here:
//!
//! ```text
//! {"c":"<16-hex checksum>","p":<payload json>}
//! ```
//!
//! The checksum covers the canonical rendering of `p` (the store's own
//! deterministic [`Json`] codec), so a line that was cut short by a crash
//! or flipped on disk parses as corrupt and is dropped, never trusted.
//! [`write_atomic`] is the complement for single-document files: write to
//! a temp file, fsync, rename — a crash leaves either the old document or
//! the new one, never a torn hybrid.

use std::io::{Read, Write};
use std::path::Path;

use cochar_machine::StableHasher;

use crate::json::Json;
use crate::StoreError;

fn checksum(body: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(body);
    h.finish()
}

/// Renders one sidecar line (no trailing newline) for `payload`.
pub fn render_line(payload: &Json) -> String {
    let body = payload.render();
    format!("{{\"c\":\"{:016x}\",\"p\":{}}}", checksum(&body), body)
}

/// Parses and verifies one sidecar line.
pub fn parse_line(line: &str) -> Result<Json, StoreError> {
    let doc = Json::parse(line).map_err(|e| StoreError::Corrupt(e.to_string()))?;
    let want = doc
        .field("c")
        .and_then(Json::as_str)
        .map_err(|e| StoreError::Corrupt(e.to_string()))
        .and_then(|s| {
            u64::from_str_radix(s, 16)
                .map_err(|_| StoreError::Corrupt(format!("bad sidecar checksum {s:?}")))
        })?;
    let payload = doc.field("p").map_err(|e| StoreError::Corrupt(e.to_string()))?;
    let got = checksum(&payload.render());
    if got != want {
        return Err(StoreError::Corrupt(format!(
            "sidecar checksum mismatch (recorded {want:016x}, computed {got:016x})"
        )));
    }
    Ok(payload.clone())
}

/// Appends one checksummed line to `path` (created if absent) and
/// flushes it.
pub fn append_line(path: &Path, payload: &Json) -> Result<(), StoreError> {
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    f.write_all(render_line(payload).as_bytes())?;
    f.write_all(b"\n")?;
    f.flush()?;
    f.sync_data()?;
    Ok(())
}

/// Reads every verifiable line from `path`.
///
/// Returns the parsed payloads plus the number of dropped lines (torn
/// tail, interior corruption). A missing file is an empty log, not an
/// error — that is what a first run looks like.
pub fn read_lines(path: &Path) -> Result<(Vec<Json>, usize), StoreError> {
    let mut text = String::new();
    match std::fs::File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut text)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e.into()),
    }
    let mut out = Vec::new();
    let mut dropped = 0usize;
    let terminated = text.ends_with('\n');
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        // An unterminated final line is a torn append: drop it silently.
        let torn_tail = !terminated && i + 1 == lines.len();
        match parse_line(line) {
            Ok(payload) if !torn_tail => out.push(payload),
            _ => dropped += 1,
        }
    }
    Ok((out, dropped))
}

/// Atomically replaces `path` with `contents` (temp file + rename).
pub fn write_atomic(path: &Path, contents: &str) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpfile(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cochar-sidecar-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("log.jsonl")
    }

    fn payload(n: u64) -> Json {
        Json::Obj(vec![("n".into(), Json::u64(n))])
    }

    #[test]
    fn lines_round_trip() {
        let p = payload(7);
        assert_eq!(parse_line(&render_line(&p)).unwrap(), p);
    }

    #[test]
    fn flipped_line_is_corrupt() {
        let line = render_line(&payload(7));
        let bad = line.replace("\"n\":7", "\"n\":8");
        assert!(matches!(parse_line(&bad), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn torn_tail_and_corruption_are_dropped() {
        let path = tmpfile("torn");
        append_line(&path, &payload(1)).unwrap();
        append_line(&path, &payload(2)).unwrap();
        // Simulate a crash mid-append: a third line cut short.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let third = render_line(&payload(3));
        text.push_str(&third[..third.len() / 2]);
        std::fs::write(&path, &text).unwrap();
        let (lines, dropped) = read_lines(&path).unwrap();
        assert_eq!(lines, vec![payload(1), payload(2)]);
        assert_eq!(dropped, 1);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn missing_file_is_empty() {
        let path = tmpfile("absent");
        let (lines, dropped) = read_lines(&path).unwrap();
        assert!(lines.is_empty());
        assert_eq!(dropped, 0);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn atomic_write_replaces_whole_document() {
        let path = tmpfile("atomic");
        write_atomic(&path, "first").unwrap();
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        assert!(!path.with_extension("tmp").exists());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
