//! # cochar-store
//!
//! Content-addressed, crash-safe persistence for simulation results — the
//! substrate of resumable sweeps.
//!
//! Every `Machine::run` a study performs is identified by a [`RunKey`]: a
//! stable 64-bit fingerprint (FNV-1a with a SplitMix64 finalizer, via
//! `cochar_machine::StableHasher`) over everything that determines the
//! outcome — machine config, prefetcher MSR, workload names and scale,
//! thread counts, role layout, seeds, and [`SCHEMA_VERSION`]. Completed
//! [`cochar_machine::RunOutcome`]s are appended to a JSON-lines journal
//! (`journal.jsonl`) with a per-record checksum, flushed as each record
//! lands. Kill the process at any point and reopen: replay drops the torn
//! final line (if any) and truncates the file back to the last good
//! record, reports interior corruption, and rebuilds the index — only the
//! cells that never completed are simulated again. The [`faults`] module
//! provides a fault-injecting journal sink ([`faults::ChaosFile`]) that
//! makes this crash model testable: ENOSPC, short writes, bit flips, and
//! kill-mid-append on a schedule.
//!
//! Because the simulator is deterministic, a cache hit is not an
//! approximation: the stored outcome is bit-identical to what a fresh run
//! would produce (a property the test suite asserts), so downstream CSVs
//! come out byte-for-byte the same whether they were computed or replayed.
//!
//! ```
//! use cochar_store::{RunKey, RunStore};
//! # let dir = std::env::temp_dir().join(format!("cochar-store-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let store = RunStore::open(&dir).unwrap();
//! assert!(store.get(RunKey(42)).is_none());
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod faults;
pub mod json;
pub mod journal;
pub mod lock;
pub mod sidecar;
pub mod store;

pub use faults::{ChaosFile, Fault, FaultPlan};
pub use journal::{read_records, AppendSink, ReplayReport};
pub use lock::StoreLock;
pub use store::{MergeReport, RunKey, RunStore, StoreStats, SCHEMA_VERSION};

use std::fmt;

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem failure.
    Io(std::io::Error),
    /// The store directory was written by an incompatible schema version.
    Schema(String),
    /// A journal record failed to parse or verify.
    Corrupt(String),
    /// Another live process holds the store's writer lock.
    Locked(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io: {e}"),
            StoreError::Schema(msg) => write!(f, "store schema: {msg}"),
            StoreError::Corrupt(msg) => write!(f, "store record: {msg}"),
            StoreError::Locked(msg) => write!(f, "store locked: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
