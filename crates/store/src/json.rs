//! Minimal, deterministic JSON: just enough for the run journal.
//!
//! The offline build has no serde runtime (the workspace `serde` is a
//! no-op shim), so the store carries its own encoder/decoder. Two
//! properties matter more than generality:
//!
//! 1. **Determinism** — objects preserve insertion order and numbers are
//!    rendered verbatim from their tokens, so `render(parse(s)) == s` for
//!    anything this module itself produced. Checksums are computed over
//!    this canonical form.
//! 2. **Exactness** — `u64` values round-trip at full precision (numbers
//!    are kept as tokens, never routed through `f64`), and `f64` values
//!    are rendered with Rust's shortest-round-trip formatting.

use std::fmt;

/// A parsed JSON value. Numbers are kept as their verbatim token.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number token, verbatim (e.g. `"42"`, `"2.7"`, `"-1e3"`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with preserved key order.
    Obj(Vec<(String, Json)>),
}

/// A parse or decode error with a short human-readable context.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Builds a number from a `u64` (exact).
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// Builds a number from a finite `f64` (shortest round-trip form).
    pub fn f64(v: f64) -> Json {
        debug_assert!(v.is_finite(), "JSON cannot carry {v}");
        Json::Num(format!("{v:?}"))
    }

    /// Builds a string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A required object field, as an error on absence.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError(format!("missing field {key:?}")))
    }

    /// This value as a `u64`.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::Num(t) => t.parse().map_err(|_| JsonError(format!("not a u64: {t}"))),
            other => err(format!("expected number, got {other:?}")),
        }
    }

    /// This value as an `f64`.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(t) => t.parse().map_err(|_| JsonError(format!("not an f64: {t}"))),
            other => err(format!("expected number, got {other:?}")),
        }
    }

    /// This value as a `bool`.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => err(format!("expected bool, got {other:?}")),
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, got {other:?}")),
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(v) => Ok(v),
            other => err(format!("expected array, got {other:?}")),
        }
    }

    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Renders to a canonical compact string (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(t) => out.push_str(t),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => err("unexpected end of input"),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => err(format!("unexpected {:?} at byte {}", other as char, self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return err(format!("malformed number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return err(format!("malformed exponent at byte {start}"));
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("non-utf8 number".into()))?;
        Ok(Json::Num(token.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError("non-utf8 \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError(format!("bad \\u escape {hex:?}")))?;
                            // Surrogate pairs are not needed for the data the
                            // journal stores; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| JsonError(format!("invalid codepoint {code:#x}")))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError("non-utf8 string".into()))?;
                    let c = rest.chars().next().ok_or_else(|| JsonError("empty".into()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_round_trip() {
        let src = r#"{"a":1,"b":[true,false,null,"x\n\"y"],"c":{"d":2.5},"e":18446744073709551615}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.render(), src);
        // Idempotent: parse(render(v)) == v.
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn u64_precision_is_exact() {
        let v = Json::u64(u64::MAX);
        assert_eq!(v.as_u64().unwrap(), u64::MAX);
        let parsed = Json::parse("18446744073709551615").unwrap();
        assert_eq!(parsed.as_u64().unwrap(), u64::MAX);
    }

    #[test]
    fn f64_round_trips_shortest_form() {
        for x in [2.7f64, 0.1, 1.0, 1e-9, 12345.6789] {
            let v = Json::f64(x);
            let back = Json::parse(&v.render()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn object_field_lookup() {
        let v = Json::parse(r#"{"k":"v","n":3}"#).unwrap();
        assert_eq!(v.field("k").unwrap().as_str().unwrap(), "v");
        assert_eq!(v.field("n").unwrap().as_u64().unwrap(), 3);
        assert!(v.field("missing").is_err());
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "tru", "\"open", "1.2.3", "{\"a\":1}x", "[01x]", "-",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn control_chars_escape_and_parse() {
        let v = Json::Str("a\u{1}b".into());
        let s = v.render();
        assert_eq!(s, "\"a\\u0001b\"");
        assert_eq!(Json::parse(&s).unwrap(), v);
    }
}
