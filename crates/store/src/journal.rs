//! The append-only run journal.
//!
//! One record per line:
//!
//! ```text
//! {"k":"<16-hex run key>","c":"<16-hex checksum>","o":{...outcome...}}
//! ```
//!
//! The checksum is FNV-1a/SplitMix64 (the same [`StableHasher`] used for
//! run keys) over the canonical rendering of the `"o"` value. Because the
//! codec is canonical — rendering a parsed record reproduces the original
//! bytes — the checksum can be re-verified on replay without storing the
//! raw payload twice.
//!
//! Crash model: a record is only meaningful once its full line (including
//! the trailing `\n`) hits the file. A process killed mid-append leaves a
//! **torn** final line, which replay drops — and then *repairs*: the file
//! is truncated back to the last newline-terminated record before the
//! append handle opens, so new records never land after garbage. Any
//! *interior* line that fails to parse or whose checksum mismatches is
//! **corrupt** and is reported, not trusted.
//!
//! Appends go through the [`AppendSink`] trait — a plain buffered file in
//! production, a fault-injecting [`crate::faults::ChaosFile`] under test —
//! so the crash model above is provable, not aspirational.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use cochar_machine::{RunOutcome, StableHasher};

use crate::codec::{decode_outcome, encode_outcome};
use crate::json::Json;
use crate::store::RunKey;
use crate::StoreError;

/// Journal file name inside a store directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// Classification tallies from replaying a journal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records that parsed and verified.
    pub valid: usize,
    /// Interior lines that failed to parse or verify.
    pub corrupt: usize,
    /// A truncated final line (0 or 1).
    pub torn: usize,
    /// Valid records whose key repeated an earlier valid record.
    pub duplicates: usize,
}

/// Destination for rendered journal lines.
///
/// The contract is all-or-nothing *per call as observed by this process*:
/// an `Ok` return means the line (and its trailing newline) reached the
/// OS. The crash model tolerates a torn write under the hood — replay
/// drops and repairs an unterminated tail — so a fault-injecting sink may
/// write a prefix and then fail, exactly like a real ENOSPC or kill.
pub trait AppendSink: Send {
    /// Writes `buf` (one full line including `\n`) and flushes to the OS.
    fn append(&mut self, buf: &[u8]) -> std::io::Result<()>;
}

/// The production sink: a buffered file flushed on every append.
pub struct FileSink {
    writer: BufWriter<File>,
}

impl FileSink {
    /// Wraps an already-opened append-mode file.
    pub fn new(file: File) -> Self {
        FileSink { writer: BufWriter::new(file) }
    }
}

impl AppendSink for FileSink {
    fn append(&mut self, buf: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(buf)?;
        self.writer.flush()
    }
}

/// Renders one journal line (without the trailing newline).
pub fn render_record(key: RunKey, outcome: &RunOutcome) -> String {
    let payload = encode_outcome(outcome).render();
    let sum = checksum(&payload);
    let mut line = String::with_capacity(payload.len() + 48);
    line.push_str("{\"k\":\"");
    line.push_str(&key.to_hex());
    line.push_str("\",\"c\":\"");
    line.push_str(&format!("{sum:016x}"));
    line.push_str("\",\"o\":");
    line.push_str(&payload);
    line.push('}');
    line
}

/// Checksum over a canonical payload string.
fn checksum(payload: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(payload);
    h.finish()
}

/// Parses and verifies one journal line.
///
/// Returns `Err` for anything that should not be trusted: syntactic
/// failure, missing fields, checksum mismatch, or an outcome that fails to
/// decode.
pub fn parse_record(line: &str) -> Result<(RunKey, RunOutcome), StoreError> {
    let v = Json::parse(line).map_err(|e| StoreError::Corrupt(e.to_string()))?;
    let key = v
        .field("k")
        .and_then(|k| k.as_str().map(str::to_string))
        .map_err(|e| StoreError::Corrupt(e.to_string()))?;
    let key = RunKey::from_hex(&key)
        .ok_or_else(|| StoreError::Corrupt(format!("bad key {key:?}")))?;
    let sum = v
        .field("c")
        .and_then(|c| c.as_str().map(str::to_string))
        .map_err(|e| StoreError::Corrupt(e.to_string()))?;
    let sum = u64::from_str_radix(&sum, 16)
        .map_err(|_| StoreError::Corrupt(format!("bad checksum {sum:?}")))?;
    let payload = v.field("o").map_err(|e| StoreError::Corrupt(e.to_string()))?;
    // The codec is canonical, so re-rendering the parsed payload
    // reconstructs the exact bytes the checksum was computed over; any
    // flipped value re-renders differently and the sums diverge.
    if checksum(&payload.render()) != sum {
        return Err(StoreError::Corrupt("checksum mismatch".into()));
    }
    let outcome = decode_outcome(payload).map_err(|e| StoreError::Corrupt(e.to_string()))?;
    Ok((key, outcome))
}

/// Classifies every line of raw journal bytes under the crash model:
/// interior lines parse-and-verify or count as corrupt; an unterminated
/// final line is torn regardless of content. Valid records stream through
/// `on_record` in file order (its return distinguishes first-seen from
/// duplicate for the tallies). Returns the report and the torn tail's
/// byte length (for callers that repair the file).
fn replay(
    raw: &[u8],
    mut on_record: impl FnMut(RunKey, RunOutcome) -> bool,
) -> (ReplayReport, usize) {
    let mut report = ReplayReport::default();
    let complete = raw.split_last().map(|(last, _)| *last == b'\n').unwrap_or(true);
    let lines: Vec<&[u8]> = raw.split(|&b| b == b'\n').filter(|l| !l.is_empty()).collect();
    let n = lines.len();
    let mut torn_bytes = 0usize;
    for (i, line) in lines.into_iter().enumerate() {
        // Strict crash model: a final line with no trailing newline is
        // torn no matter what it contains — even if it happens to parse,
        // the append that produced it did not complete, so it is not
        // trusted.
        if i + 1 == n && !complete {
            report.torn += 1;
            torn_bytes = line.len();
            continue;
        }
        let parsed = std::str::from_utf8(line)
            .map_err(|_| StoreError::Corrupt("non-utf8 line".into()))
            .and_then(parse_record);
        match parsed {
            Ok((key, outcome)) => {
                if on_record(key, outcome) {
                    report.valid += 1;
                } else {
                    report.duplicates += 1;
                }
            }
            Err(_) => report.corrupt += 1,
        }
    }
    (report, torn_bytes)
}

/// Reads every trustworthy record from the journal file at `path`
/// without opening it for appending: no tail repair, no writer lock —
/// safe on a file whose owning process was killed mid-append. A missing
/// file is an empty journal. Records come back in file order, duplicates
/// included (the report tallies them); torn tails and corrupt lines are
/// classified exactly as a store open would.
pub fn read_records(
    path: &Path,
) -> Result<(Vec<(RunKey, RunOutcome)>, ReplayReport), StoreError> {
    let mut raw = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut raw)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok((Vec::new(), ReplayReport::default()));
        }
        Err(e) => return Err(e.into()),
    }
    let mut seen = std::collections::HashSet::new();
    let mut records = Vec::new();
    let (report, _torn) = replay(&raw, |key, outcome| {
        records.push((key, outcome));
        seen.insert(key)
    });
    Ok((records, report))
}

/// Factory recreating the append sink after the file is (re)opened.
pub type SinkFactory = Box<dyn Fn(File) -> Box<dyn AppendSink> + Send>;

/// An open journal: replay on open, then append-only.
pub struct Journal {
    path: PathBuf,
    sink: Box<dyn AppendSink>,
    wrap: SinkFactory,
    /// Set when an append fails: the file may end in a partial line, so
    /// the next append must re-frame before writing (see [`Journal::append`]).
    dirty: bool,
}

impl Journal {
    /// Opens (creating if absent) the journal in `dir` and replays it.
    ///
    /// Every valid record is handed to `on_record` in file order, so the
    /// caller can build its index (last record wins for duplicate keys).
    pub fn open(
        dir: &Path,
        on_record: impl FnMut(RunKey, RunOutcome) -> bool,
    ) -> Result<(Journal, ReplayReport), StoreError> {
        Self::open_with(dir, on_record, Box::new(|f| Box::new(FileSink::new(f))))
    }

    /// Opens the journal with a caller-supplied append sink.
    ///
    /// `wrap` is invoked on every (re)open of the underlying file — once
    /// here and again after each [`Journal::rewrite`] — so a fault plan
    /// survives compaction.
    pub fn open_with(
        dir: &Path,
        on_record: impl FnMut(RunKey, RunOutcome) -> bool,
        wrap: SinkFactory,
    ) -> Result<(Journal, ReplayReport), StoreError> {
        let path = dir.join(JOURNAL_FILE);
        let mut report = ReplayReport::default();
        if path.exists() {
            let mut raw = Vec::new();
            File::open(&path)?.read_to_end(&mut raw)?;
            let (rep, torn_bytes) = replay(&raw, on_record);
            report = rep;
            // Tail repair: chop the torn fragment off the file before the
            // append handle opens, so the next record starts at a line
            // boundary instead of gluing itself onto garbage.
            if torn_bytes > 0 {
                let good_len = (raw.len() - torn_bytes) as u64;
                OpenOptions::new().write(true).open(&path)?.set_len(good_len)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let sink = wrap(file);
        Ok((Journal { path, sink, wrap, dirty: false }, report))
    }

    /// Appends one record and flushes it to the OS.
    ///
    /// The flush bounds crash loss to the record currently being written:
    /// everything previously appended survives a kill.
    ///
    /// After a *failed* append the file may end in a partial line, and a
    /// record appended directly after it would fuse with the fragment and
    /// be lost as corrupt on replay. So the first append after a failure
    /// leads with an extra `\n` to close any fragment — replay filters
    /// empty lines, and the fragment (if any) becomes an isolated interior
    /// line that is classified corrupt instead of swallowing a good record.
    pub fn append(&mut self, key: RunKey, outcome: &RunOutcome) -> Result<(), StoreError> {
        let record = render_record(key, outcome);
        let mut line = String::with_capacity(record.len() + 2);
        if self.dirty {
            line.push('\n');
        }
        line.push_str(&record);
        line.push('\n');
        match self.sink.append(line.as_bytes()) {
            Ok(()) => {
                self.dirty = false;
                Ok(())
            }
            Err(e) => {
                self.dirty = true;
                Err(e.into())
            }
        }
    }

    /// Rewrites the journal to contain exactly `records`, atomically.
    ///
    /// Used by `gc`: the compacted content is written to a temp file in
    /// the same directory and renamed over the journal, so a crash during
    /// compaction leaves either the old or the new journal, never a mix.
    pub fn rewrite<'a>(
        &mut self,
        records: impl Iterator<Item = (RunKey, &'a RunOutcome)>,
    ) -> Result<(), StoreError> {
        let tmp = self.path.with_extension("jsonl.tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            for (key, outcome) in records {
                let mut line = render_record(key, outcome);
                line.push('\n');
                w.write_all(line.as_bytes())?;
            }
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // The old append handle points at the unlinked inode; reopen.
        let file = OpenOptions::new().create(true).append(true).open(&self.path)?;
        self.sink = (self.wrap)(file);
        self.dirty = false;
        Ok(())
    }

    /// Size of the journal file in bytes.
    pub fn file_bytes(&self) -> Result<u64, StoreError> {
        Ok(std::fs::metadata(&self.path)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::tests::sample_outcome;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cochar-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn record_round_trips() {
        let o = sample_outcome();
        let line = render_record(RunKey(0xdead_beef_0123_4567), &o);
        let (key, back) = parse_record(&line).unwrap();
        assert_eq!(key, RunKey(0xdead_beef_0123_4567));
        assert_eq!(back, o);
    }

    #[test]
    fn flipped_value_fails_checksum() {
        let o = sample_outcome();
        let line = render_record(RunKey(1), &o);
        // Corrupt the horizon value without breaking JSON syntax.
        let bad = line.replace("\"horizon\":123456789012", "\"horizon\":123456789013");
        assert_ne!(bad, line, "replacement must hit");
        match parse_record(&bad) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn torn_tail_is_dropped_and_interior_corruption_reported() {
        let dir = tmpdir("torn");
        let o = sample_outcome();
        {
            let (mut j, _) = Journal::open(&dir, |_, _| true).unwrap();
            j.append(RunKey(1), &o).unwrap();
            j.append(RunKey(2), &o).unwrap();
            j.append(RunKey(3), &o).unwrap();
        }
        // Corrupt record 2 in place and tear record 3 in half.
        let path = dir.join(JOURNAL_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let mangled = lines[1].replace("\"horizon\":123456789012", "\"horizon\":999999999999");
        let torn = &lines[2][..lines[2].len() / 2];
        std::fs::write(&path, format!("{}\n{}\n{}", lines[0], mangled, torn)).unwrap();

        let mut seen = Vec::new();
        let (_, report) = Journal::open(&dir, |k, _| {
            seen.push(k);
            true
        })
        .unwrap();
        assert_eq!(seen, vec![RunKey(1)]);
        assert_eq!(report, ReplayReport { valid: 1, corrupt: 1, torn: 1, duplicates: 0 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unterminated_parseable_tail_is_still_torn() {
        // Strictness check: the final append may have lost only its
        // newline, leaving a line that parses — it is dropped anyway,
        // because the write provably did not complete.
        let dir = tmpdir("strict");
        let o = sample_outcome();
        {
            let (mut j, _) = Journal::open(&dir, |_, _| true).unwrap();
            j.append(RunKey(1), &o).unwrap();
            j.append(RunKey(2), &o).unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.pop(), Some('\n'));
        std::fs::write(&path, &text).unwrap();

        let mut seen = Vec::new();
        let (_, report) = Journal::open(&dir, |k, _| {
            seen.push(k);
            true
        })
        .unwrap();
        assert_eq!(seen, vec![RunKey(1)]);
        assert_eq!(report, ReplayReport { valid: 1, corrupt: 0, torn: 1, duplicates: 0 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_repaired_before_new_appends() {
        let dir = tmpdir("repair");
        let o = sample_outcome();
        {
            let (mut j, _) = Journal::open(&dir, |_, _| true).unwrap();
            j.append(RunKey(1), &o).unwrap();
            j.append(RunKey(2), &o).unwrap();
        }
        let path = dir.join(JOURNAL_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - text.lines().last().unwrap().len() / 2 - 1;
        std::fs::write(&path, &text[..cut]).unwrap();

        // Opening repairs the tail, so the next append lands on a clean
        // line boundary instead of fusing with the fragment.
        {
            let (mut j, report) = Journal::open(&dir, |_, _| true).unwrap();
            assert_eq!(report.torn, 1);
            j.append(RunKey(3), &o).unwrap();
        }
        let repaired = std::fs::read_to_string(&path).unwrap();
        assert!(repaired.ends_with('\n'));

        let mut seen = Vec::new();
        let (_, report) = Journal::open(&dir, |k, _| {
            seen.push(k);
            true
        })
        .unwrap();
        assert_eq!(seen, vec![RunKey(1), RunKey(3)]);
        assert_eq!(report, ReplayReport { valid: 2, corrupt: 0, torn: 0, duplicates: 0 });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_compacts_and_stays_appendable() {
        let dir = tmpdir("rewrite");
        let o = sample_outcome();
        let (mut j, _) = Journal::open(&dir, |_, _| true).unwrap();
        j.append(RunKey(1), &o).unwrap();
        j.append(RunKey(1), &o).unwrap();
        j.append(RunKey(2), &o).unwrap();
        j.rewrite([(RunKey(1), &o), (RunKey(2), &o)].into_iter()).unwrap();
        j.append(RunKey(3), &o).unwrap();

        let mut seen = Vec::new();
        let (_, report) = Journal::open(&dir, |k, _| {
            seen.push(k);
            true
        })
        .unwrap();
        assert_eq!(seen, vec![RunKey(1), RunKey(2), RunKey(3)]);
        assert_eq!(report.corrupt, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
