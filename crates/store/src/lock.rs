//! Advisory multi-writer protection for a store directory.
//!
//! A [`StoreLock`] is a `journal.lock` file created with `create_new`
//! next to the journal, holding the owner's pid and (on Linux) the pid's
//! process start time. Opening a store acquires it; a second opener —
//! most dangerously a concurrent `store gc`, whose atomic rewrite would
//! discard records another process is appending — gets
//! [`StoreError::Locked`] with the owner's pid instead of silently
//! corrupting the shared journal.
//!
//! The lock is *advisory within this suite*: every writer goes through
//! [`crate::RunStore`], which acquires it, but nothing stops an external
//! process from editing the file. Crash recovery is automatic — the
//! failure this matters most for is a SIGKILLed sweep coordinator, whose
//! lock file survives it and must not block `--resume`. A lock is stale
//! and broken on acquire when its owner is provably dead:
//!
//! * the pid is gone (`/proc/<pid>` on Linux), or
//! * the pid exists but its start time (field 22 of `/proc/<pid>/stat`)
//!   differs from the recorded one — the pid was recycled by an
//!   unrelated process, so the original owner is dead.
//!
//! On non-Linux platforms liveness cannot be probed cheaply, so an
//! existing lock is always honored — err on the side of refusing, never
//! on the side of two writers.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::StoreError;

/// Lock file name inside a store directory.
pub const LOCK_FILE: &str = "journal.lock";

/// An acquired store lock; released (file removed) on drop.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

impl StoreLock {
    /// Acquires the lock in `dir`, breaking a stale one if its owner is
    /// provably dead.
    pub fn acquire(dir: &Path) -> Result<StoreLock, StoreError> {
        let path = dir.join(LOCK_FILE);
        // One break-and-retry round per distinct stale owner; bounded so
        // a livelock against a crash-looping peer cannot spin forever.
        for _ in 0..3 {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    // Losing the stamp write is harmless: an empty lock
                    // file reads as unparseable, which is treated as
                    // stale on the next acquire attempt after we drop it.
                    let pid = std::process::id();
                    match proc_starttime(pid) {
                        Some(start) => {
                            let _ = writeln!(f, "{pid} {start}");
                        }
                        None => {
                            let _ = writeln!(f, "{pid}");
                        }
                    }
                    return Ok(StoreLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    match read_owner(&path) {
                        Some(owner) if owner_alive(&owner) => {
                            return Err(StoreError::Locked(format!(
                                "{} is held by pid {}",
                                path.display(),
                                owner.pid
                            )));
                        }
                        Some(_) | None => {
                            // Dead owner or garbage: break the lock. The
                            // remove can race another breaker; both fall
                            // through to a fresh create_new attempt.
                            let _ = std::fs::remove_file(&path);
                        }
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(StoreError::Locked(format!(
            "{} keeps reappearing while being broken (crash-looping writer?)",
            path.display()
        )))
    }

    /// The lock file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// The recorded owner of a lock file: pid, plus the owning process's
/// start time when it could be recorded (Linux).
struct Owner {
    pid: u32,
    starttime: Option<u64>,
}

fn read_owner(path: &Path) -> Option<Owner> {
    let mut text = String::new();
    std::fs::File::open(path).ok()?.read_to_string(&mut text).ok()?;
    let mut fields = text.split_whitespace();
    let pid: u32 = fields.next()?.parse().ok()?;
    let starttime = fields.next().and_then(|s| s.parse().ok());
    Some(Owner { pid, starttime })
}

#[cfg(target_os = "linux")]
fn owner_alive(owner: &Owner) -> bool {
    match proc_starttime(owner.pid) {
        None => false, // pid is gone
        Some(live_start) => match owner.starttime {
            // Same pid, different start time: the pid was recycled, the
            // recorded owner is dead.
            Some(recorded) => recorded == live_start,
            // Legacy pid-only stamp: existence is the best we can do.
            None => true,
        },
    }
}

#[cfg(not(target_os = "linux"))]
fn owner_alive(_owner: &Owner) -> bool {
    // No cheap liveness probe: treat every recorded owner as alive and
    // refuse, which is the safe direction for an advisory lock.
    true
}

/// The process start time of `pid` (clock ticks since boot): field 22 of
/// `/proc/<pid>/stat`, which together with the pid uniquely identifies a
/// process incarnation. `None` when the pid does not exist (or off
/// Linux, where the stamp degrades to pid-only).
#[cfg(target_os = "linux")]
fn proc_starttime(pid: u32) -> Option<u64> {
    let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    // The comm field (2) is parenthesized and may itself contain spaces
    // or parens; everything after the *last* ')' is space-separated,
    // starting at field 3. Start time is field 22, so index 19 there.
    let tail = &stat[stat.rfind(')')? + 1..];
    tail.split_whitespace().nth(19)?.parse().ok()
}

#[cfg(not(target_os = "linux"))]
fn proc_starttime(_pid: u32) -> Option<u64> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cochar-lock-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn second_acquire_is_refused_and_release_frees() {
        let dir = tmpdir("basic");
        let lock = StoreLock::acquire(&dir).unwrap();
        match StoreLock::acquire(&dir) {
            Err(StoreError::Locked(msg)) => {
                assert!(msg.contains(&std::process::id().to_string()), "{msg}");
            }
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(lock);
        assert!(!dir.join(LOCK_FILE).exists());
        let _relock = StoreLock::acquire(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn stale_lock_from_dead_pid_is_broken() {
        let dir = tmpdir("stale");
        // Pick a pid that cannot be alive: pid_max on Linux is < 2^22 by
        // default and never exceeds 2^31; u32::MAX is out of range.
        std::fs::write(dir.join(LOCK_FILE), format!("{}\n", u32::MAX)).unwrap();
        let _lock = StoreLock::acquire(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn recycled_pid_lock_is_broken() {
        let dir = tmpdir("recycled");
        // A live pid (our own) with an impossible start time models a
        // recycled pid: the recorded owner must read as dead.
        std::fs::write(
            dir.join(LOCK_FILE),
            format!("{} {}\n", std::process::id(), u64::MAX),
        )
        .unwrap();
        let _lock = StoreLock::acquire(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_pid_with_matching_starttime_is_honored() {
        let dir = tmpdir("live");
        let pid = std::process::id();
        let start = proc_starttime(pid).expect("own starttime readable");
        std::fs::write(dir.join(LOCK_FILE), format!("{pid} {start}\n")).unwrap();
        assert!(matches!(StoreLock::acquire(&dir), Err(StoreError::Locked(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_lock_is_broken() {
        let dir = tmpdir("garbage");
        std::fs::write(dir.join(LOCK_FILE), "not a pid\n").unwrap();
        let _lock = StoreLock::acquire(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
