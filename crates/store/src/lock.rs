//! Advisory multi-writer protection for a store directory.
//!
//! A [`StoreLock`] is a `journal.lock` file created with `create_new`
//! next to the journal, holding the owner's pid. Opening a store acquires
//! it; a second opener — most dangerously a concurrent `store gc`, whose
//! atomic rewrite would discard records another process is appending —
//! gets [`StoreError::Locked`] with the owner's pid instead of silently
//! corrupting the shared journal.
//!
//! The lock is *advisory within this suite*: every writer goes through
//! [`crate::RunStore`], which acquires it, but nothing stops an external
//! process from editing the file. Crash recovery is automatic: a lock
//! whose pid is no longer alive (checked via `/proc/<pid>` on Linux) is
//! stale and is broken on acquire. On non-Linux platforms liveness cannot
//! be probed cheaply, so an existing lock is always honored — err on the
//! side of refusing, never on the side of two writers.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::StoreError;

/// Lock file name inside a store directory.
pub const LOCK_FILE: &str = "journal.lock";

/// An acquired store lock; released (file removed) on drop.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

impl StoreLock {
    /// Acquires the lock in `dir`, breaking a stale one if its owner is
    /// provably dead.
    pub fn acquire(dir: &Path) -> Result<StoreLock, StoreError> {
        let path = dir.join(LOCK_FILE);
        // One break-and-retry round per distinct stale owner; bounded so
        // a livelock against a crash-looping peer cannot spin forever.
        for _ in 0..3 {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    // Losing the pid write is harmless: an empty lock
                    // file reads as unparseable, which is treated as
                    // stale on the next acquire attempt after we drop it.
                    let _ = writeln!(f, "{}", std::process::id());
                    return Ok(StoreLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    match read_owner(&path) {
                        Some(pid) if pid_alive(pid) => {
                            return Err(StoreError::Locked(format!(
                                "{} is held by pid {pid}",
                                path.display()
                            )));
                        }
                        Some(_) | None => {
                            // Dead owner or garbage: break the lock. The
                            // remove can race another breaker; both fall
                            // through to a fresh create_new attempt.
                            let _ = std::fs::remove_file(&path);
                        }
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(StoreError::Locked(format!(
            "{} keeps reappearing while being broken (crash-looping writer?)",
            path.display()
        )))
    }

    /// The lock file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn read_owner(path: &Path) -> Option<u32> {
    let mut text = String::new();
    std::fs::File::open(path).ok()?.read_to_string(&mut text).ok()?;
    text.trim().parse().ok()
}

#[cfg(target_os = "linux")]
fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(not(target_os = "linux"))]
fn pid_alive(_pid: u32) -> bool {
    // No cheap liveness probe: treat every recorded owner as alive and
    // refuse, which is the safe direction for an advisory lock.
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cochar-lock-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn second_acquire_is_refused_and_release_frees() {
        let dir = tmpdir("basic");
        let lock = StoreLock::acquire(&dir).unwrap();
        match StoreLock::acquire(&dir) {
            Err(StoreError::Locked(msg)) => {
                assert!(msg.contains(&std::process::id().to_string()), "{msg}");
            }
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(lock);
        assert!(!dir.join(LOCK_FILE).exists());
        let _relock = StoreLock::acquire(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn stale_lock_from_dead_pid_is_broken() {
        let dir = tmpdir("stale");
        // Pick a pid that cannot be alive: pid_max on Linux is < 2^22 by
        // default and never exceeds 2^31; u32::MAX is out of range.
        std::fs::write(dir.join(LOCK_FILE), format!("{}\n", u32::MAX)).unwrap();
        let _lock = StoreLock::acquire(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_lock_is_broken() {
        let dir = tmpdir("garbage");
        std::fs::write(dir.join(LOCK_FILE), "not a pid\n").unwrap();
        let _lock = StoreLock::acquire(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
