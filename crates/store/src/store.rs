//! The content-addressed run store.
//!
//! A [`RunStore`] maps a deterministic [`RunKey`] (a stable fingerprint of
//! everything that determines a simulation: machine config, MSR, workload
//! specs, placement, seeds, schema version) to the [`RunOutcome`] it
//! produced. Completed outcomes are appended to an on-disk journal as they
//! finish, so a killed sweep resumes by reopening the store: replay
//! rebuilds the index and only the missing cells are simulated again.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cochar_machine::RunOutcome;

use crate::journal::{Journal, ReplayReport};
use crate::StoreError;

/// Bumped whenever the fingerprint inputs or the journal encoding change
/// in a way that invalidates cached outcomes. The version participates in
/// every run key, so a schema bump silently misses old records instead of
/// misreading them.
///
/// v2: `RunOutcome` gained the `stalled` flag and truncated runs report
/// the horizon (not a placeholder) for unfinished foregrounds.
///
/// v3: `CoreCounters` gained `idle_cycles` (the zero-progress livelock
/// guard attributes skipped quanta instead of dropping them) and the
/// prefetch-usefulness accounting no longer lets a demand re-insert keep
/// a stale prefetch bit.
pub const SCHEMA_VERSION: u32 = 3;

/// A 64-bit content fingerprint identifying one simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunKey(pub u64);

impl RunKey {
    /// Lower-case 16-digit hex form (the journal's key encoding).
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the 16-digit hex form.
    pub fn from_hex(s: &str) -> Option<RunKey> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(RunKey)
    }
}

impl fmt::Display for RunKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Counter snapshot for one store (cumulative since open).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// `get` calls that found a cached outcome.
    pub hits: u64,
    /// `get` calls that found nothing.
    pub misses: u64,
    /// Outcomes appended this session.
    pub puts: u64,
    /// Records resident in the index right now.
    pub resident: u64,
}

/// Tallies from merging foreign records into a store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Records that were new and were appended to the journal.
    pub added: u64,
    /// Records already resident (same fingerprint), skipped.
    pub duplicates: u64,
}

struct Inner {
    index: HashMap<RunKey, Arc<RunOutcome>>,
    journal: Journal,
    /// Held for the store's whole lifetime; released (file removed) when
    /// the last clone drops.
    _lock: crate::lock::StoreLock,
}

/// A content-addressed, crash-safe store of run outcomes.
///
/// Thread-safe: sweeps call [`RunStore::get`] / [`RunStore::put`]
/// concurrently from worker threads. Clones share the same store.
#[derive(Clone)]
pub struct RunStore {
    inner: Arc<Mutex<Inner>>,
    dir: PathBuf,
    replay: ReplayReport,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    puts: Arc<AtomicU64>,
}

impl RunStore {
    /// Opens (creating if needed) the store at `dir` and replays its
    /// journal. Later records win for duplicate keys.
    pub fn open(dir: impl AsRef<Path>) -> Result<RunStore, StoreError> {
        Self::open_with_faults(dir, crate::faults::FaultPlan::new())
    }

    /// Opens the store with journal appends routed through a
    /// [`ChaosFile`](crate::faults::ChaosFile) executing `plan`.
    ///
    /// An empty plan behaves identically to [`RunStore::open`] except for
    /// the extra indirection; a non-empty plan makes scheduled appends
    /// fail the way real disks fail, which is how the fault-injection
    /// suite (and `COCHAR_CHAOS_STORE` in the CLI) proves the degradation
    /// path.
    pub fn open_with_faults(
        dir: impl AsRef<Path>,
        plan: crate::faults::FaultPlan,
    ) -> Result<RunStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Self::check_schema(&dir)?;
        // Writer lock before replay: two processes replaying and then
        // appending to the same journal would interleave their records
        // and, worse, a concurrent gc rewrite would drop the other
        // writer's appends. One live store handle per directory.
        let lock = crate::lock::StoreLock::acquire(&dir)?;
        let mut index: HashMap<RunKey, Arc<RunOutcome>> = HashMap::new();
        let wrap: crate::journal::SinkFactory = if plan.is_empty() {
            Box::new(|f| Box::new(crate::journal::FileSink::new(f)))
        } else {
            Box::new(move |f| Box::new(crate::faults::ChaosFile::new(f, plan.clone())))
        };
        let (journal, replay) = Journal::open_with(
            &dir,
            |key, outcome| index.insert(key, Arc::new(outcome)).is_none(),
            wrap,
        )?;
        Ok(RunStore {
            inner: Arc::new(Mutex::new(Inner { index, journal, _lock: lock })),
            dir,
            replay,
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
            puts: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Validates (writing on first open) the store's schema marker so a
    /// journal written by an incompatible version is refused instead of
    /// replayed as all-corrupt.
    fn check_schema(dir: &Path) -> Result<(), StoreError> {
        let marker = dir.join("schema");
        let want = format!("cochar-store v{SCHEMA_VERSION}\n");
        match std::fs::read_to_string(&marker) {
            Ok(found) if found == want => Ok(()),
            Ok(found) => Err(StoreError::Schema(format!(
                "{} holds {:?}, this build writes {:?}",
                marker.display(),
                found.trim(),
                want.trim()
            ))),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                std::fs::write(&marker, want)?;
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What replay found when the store was opened.
    pub fn replay_report(&self) -> ReplayReport {
        self.replay
    }

    /// Looks a key up, counting a hit or miss.
    pub fn get(&self, key: RunKey) -> Option<Arc<RunOutcome>> {
        let found = self.inner.lock().unwrap().index.get(&key).cloned();
        match found {
            Some(o) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(o)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Checks presence without touching hit/miss counters (used by
    /// resume-status reporting).
    pub fn contains(&self, key: RunKey) -> bool {
        self.inner.lock().unwrap().index.contains_key(&key)
    }

    /// Journals an outcome and installs it in the index.
    ///
    /// A key already resident is **not** re-appended: outcomes are
    /// deterministic functions of their key, so the resident record is
    /// already correct and re-writing it would only grow the journal.
    pub fn put(&self, key: RunKey, outcome: Arc<RunOutcome>) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.index.contains_key(&key) {
            return Ok(());
        }
        inner.journal.append(key, &outcome)?;
        inner.index.insert(key, outcome);
        self.puts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Number of resident records.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().index.len()
    }

    /// True when no records are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All resident records, sorted by key for stable listings.
    pub fn entries(&self) -> Vec<(RunKey, Arc<RunOutcome>)> {
        let inner = self.inner.lock().unwrap();
        let mut v: Vec<_> = inner.index.iter().map(|(k, o)| (*k, Arc::clone(o))).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Merges foreign records (another store's replayed journal, records
    /// off the fabric wire) into this store under one index lock.
    ///
    /// Pure dedup by fingerprint: a key already resident is counted as a
    /// duplicate and skipped — outcomes are deterministic functions of
    /// their key, so the resident record is already the right bytes. New
    /// records are journaled and installed. An append failure aborts the
    /// merge mid-way; everything already appended stays valid.
    pub fn merge_records(
        &self,
        records: impl IntoIterator<Item = (RunKey, Arc<RunOutcome>)>,
    ) -> Result<MergeReport, StoreError> {
        let mut inner = self.inner.lock().unwrap();
        let mut report = MergeReport::default();
        for (key, outcome) in records {
            if inner.index.contains_key(&key) {
                report.duplicates += 1;
                continue;
            }
            inner.journal.append(key, &outcome)?;
            inner.index.insert(key, outcome);
            self.puts.fetch_add(1, Ordering::Relaxed);
            report.added += 1;
        }
        Ok(report)
    }

    /// Merges every trustworthy record of the journal file at `path`
    /// (typically a dead worker's store) into this store. The file is
    /// only read — torn tails and corrupt lines are dropped exactly as a
    /// replay would, and reported alongside the merge tallies.
    pub fn merge_journal(
        &self,
        path: &Path,
    ) -> Result<(MergeReport, crate::journal::ReplayReport), StoreError> {
        let (records, replay) = crate::journal::read_records(path)?;
        let report =
            self.merge_records(records.into_iter().map(|(k, o)| (k, Arc::new(o))))?;
        Ok((report, replay))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            resident: self.len() as u64,
        }
    }

    /// Re-reads the journal from disk and verifies every line, without
    /// disturbing the live index. Returns what a fresh open would see.
    pub fn verify(&self) -> Result<ReplayReport, StoreError> {
        // Hold the lock so no append interleaves with the scan.
        let _guard = self.inner.lock().unwrap();
        let mut seen = std::collections::HashSet::new();
        let (_, report) = Journal::open(&self.dir, |key, _| seen.insert(key))?;
        Ok(report)
    }

    /// Compacts the journal: drops corrupt/torn lines and duplicate keys,
    /// keeping the resident (latest-wins) record set. Returns journal
    /// bytes before and after.
    pub fn gc(&self) -> Result<(u64, u64), StoreError> {
        let mut inner = self.inner.lock().unwrap();
        let before = inner.journal.file_bytes()?;
        let mut records: Vec<(RunKey, Arc<RunOutcome>)> =
            inner.index.iter().map(|(k, o)| (*k, Arc::clone(o))).collect();
        records.sort_by_key(|(k, _)| *k);
        inner.journal.rewrite(records.iter().map(|(k, o)| (*k, o.as_ref())))?;
        let after = inner.journal.file_bytes()?;
        Ok((before, after))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::tests::sample_outcome;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cochar-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_persists_across_reopen() {
        let dir = tmpdir("persist");
        let o = Arc::new(sample_outcome());
        {
            let store = RunStore::open(&dir).unwrap();
            assert!(store.get(RunKey(7)).is_none());
            store.put(RunKey(7), Arc::clone(&o)).unwrap();
            assert_eq!(store.get(RunKey(7)).unwrap().as_ref(), o.as_ref());
            let s = store.stats();
            assert_eq!((s.hits, s.misses, s.puts, s.resident), (1, 1, 1, 1));
        }
        let store = RunStore::open(&dir).unwrap();
        assert_eq!(store.get(RunKey(7)).unwrap().as_ref(), o.as_ref());
        assert_eq!(store.replay_report().valid, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_put_does_not_grow_journal() {
        let dir = tmpdir("dup");
        let o = Arc::new(sample_outcome());
        let store = RunStore::open(&dir).unwrap();
        store.put(RunKey(1), Arc::clone(&o)).unwrap();
        let one = std::fs::metadata(dir.join(crate::journal::JOURNAL_FILE)).unwrap().len();
        store.put(RunKey(1), Arc::clone(&o)).unwrap();
        let two = std::fs::metadata(dir.join(crate::journal::JOURNAL_FILE)).unwrap().len();
        assert_eq!(one, two);
        assert_eq!(store.stats().puts, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_mismatch_is_refused() {
        let dir = tmpdir("schema");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("schema"), "cochar-store v999\n").unwrap();
        match RunStore::open(&dir) {
            Err(StoreError::Schema(_)) => {}
            other => panic!("expected schema error, got {:?}", other.map(|_| ())),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_drops_corrupt_lines_and_shrinks() {
        let dir = tmpdir("gc");
        let o = Arc::new(sample_outcome());
        {
            let store = RunStore::open(&dir).unwrap();
            store.put(RunKey(1), Arc::clone(&o)).unwrap();
            store.put(RunKey(2), Arc::clone(&o)).unwrap();
        }
        // Inject garbage between valid records.
        let path = dir.join(crate::journal::JOURNAL_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        std::fs::write(&path, format!("{}\nthis is not json\n{}\n", lines[0], lines[1])).unwrap();

        let store = RunStore::open(&dir).unwrap();
        assert_eq!(store.replay_report().corrupt, 1);
        assert_eq!(store.len(), 2);
        let (before, after) = store.gc().unwrap();
        assert!(after < before);
        assert_eq!(store.verify().unwrap(), ReplayReport { valid: 2, ..Default::default() });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_put_get_is_safe() {
        let dir = tmpdir("mt");
        let store = RunStore::open(&dir).unwrap();
        let o = Arc::new(sample_outcome());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let store = store.clone();
                let o = Arc::clone(&o);
                s.spawn(move || {
                    for i in 0..25u64 {
                        let key = RunKey(t * 100 + i);
                        store.put(key, Arc::clone(&o)).unwrap();
                        assert!(store.get(key).is_some());
                    }
                });
            }
        });
        assert_eq!(store.len(), 100);
        drop(store);
        let fresh = RunStore::open(&dir).unwrap();
        assert_eq!(fresh.len(), 100);
        assert_eq!(fresh.replay_report().corrupt, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_hex_round_trip() {
        let k = RunKey(0x0123_4567_89ab_cdef);
        assert_eq!(k.to_hex(), "0123456789abcdef");
        assert_eq!(RunKey::from_hex(&k.to_hex()), Some(k));
        assert_eq!(RunKey::from_hex("xyz"), None);
        assert_eq!(RunKey::from_hex("0123"), None);
    }
}
