//! Store fault injection: a chaos harness for the journal's crash model.
//!
//! [`ChaosFile`] wraps the journal's real append-mode file behind the
//! [`AppendSink`] trait and perturbs scheduled appends: disk-full errors,
//! short (torn) writes, single-bit corruption, transient interruptions,
//! and kill-mid-append. Everything it does to the file is something a
//! real machine can do — the harness exists to prove that replay
//! classifies each of these exactly as DESIGN.md's failure model says it
//! must (torn tails dropped and repaired, flipped bits caught by the
//! checksum, full disks degrading the store rather than the sweep).
//!
//! Plans are also parseable from a compact string (`"enospc@2"`,
//! `"short@1:20,flip@3:13"`) so the CLI can arm faults from an
//! environment variable in end-to-end tests without bespoke test builds.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, Write};

use crate::journal::AppendSink;

/// One scheduled misbehaviour of the append path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Disk full: the append fails with [`io::ErrorKind::StorageFull`]
    /// writing nothing, and every later append fails the same way —
    /// a full disk stays full.
    Enospc,
    /// A one-shot [`io::ErrorKind::Interrupted`] failure writing nothing;
    /// the next attempt succeeds. Models EINTR / blips a retry absorbs.
    Transient,
    /// Torn write: the first `n` bytes of the line reach the file, then
    /// the append fails. Replay must classify the fragment as torn.
    Short(usize),
    /// Single-bit corruption: bit `b` (counting from the start of the
    /// line) is flipped, the write "succeeds", and only the checksum can
    /// catch it on replay.
    BitFlip(usize),
    /// Kill mid-append: the first `n` bytes land, then the process is
    /// treated as dead — this and all later appends fail permanently.
    Kill(usize),
}

/// A schedule of faults keyed by zero-based append index.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    schedule: BTreeMap<u64, Fault>,
}

impl FaultPlan {
    /// An empty plan (all appends succeed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `fault` for the `nth` append (zero-based), replacing any
    /// fault already scheduled there.
    pub fn at(mut self, nth: u64, fault: Fault) -> Self {
        self.schedule.insert(nth, fault);
        self
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// The fault scheduled for append `nth`, if any.
    pub fn fault_at(&self, nth: u64) -> Option<Fault> {
        self.schedule.get(&nth).copied()
    }

    /// Parses the compact plan grammar: a comma-separated list of
    /// `kind@n` or `kind@n:arg` clauses, where `n` is the zero-based
    /// append index.
    ///
    /// ```text
    /// enospc@2            disk full from append 2 onward
    /// transient@1         append 1 fails once with EINTR
    /// short@1:20          append 1 writes only 20 bytes, then errors
    /// flip@0:13           append 0 lands with bit 13 flipped
    /// kill@3:7            append 3 writes 7 bytes, then dies for good
    /// ```
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for clause in text.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (kind, rest) = clause
                .split_once('@')
                .ok_or_else(|| format!("fault clause {clause:?} is missing '@'"))?;
            let (nth, arg) = match rest.split_once(':') {
                Some((n, a)) => (n, Some(a)),
                None => (rest, None),
            };
            let nth: u64 = nth
                .parse()
                .map_err(|_| format!("bad append index {nth:?} in {clause:?}"))?;
            let arg_usize = |name: &str| -> Result<usize, String> {
                arg.ok_or_else(|| format!("{kind}@ needs :{name} in {clause:?}"))?
                    .parse()
                    .map_err(|_| format!("bad {name} in {clause:?}"))
            };
            let fault = match kind {
                "enospc" => Fault::Enospc,
                "transient" => Fault::Transient,
                "short" => Fault::Short(arg_usize("bytes")?),
                "flip" => Fault::BitFlip(arg_usize("bit")?),
                "kill" => Fault::Kill(arg_usize("bytes")?),
                other => return Err(format!("unknown fault kind {other:?}")),
            };
            if (kind == "enospc" || kind == "transient") && arg.is_some() {
                return Err(format!("{kind}@ takes no argument, got {clause:?}"));
            }
            plan.schedule.insert(nth, fault);
        }
        Ok(plan)
    }
}

/// A journal append sink that executes a [`FaultPlan`].
pub struct ChaosFile {
    inner: File,
    plan: FaultPlan,
    appends: u64,
    /// Once set, every append fails with this message: the disk stayed
    /// full, or the "process" died mid-write.
    dead: Option<&'static str>,
}

impl ChaosFile {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: File, plan: FaultPlan) -> Self {
        ChaosFile { inner, plan, appends: 0, dead: None }
    }

    fn write_prefix(&mut self, buf: &[u8], n: usize) -> io::Result<()> {
        let n = n.min(buf.len());
        self.inner.write_all(&buf[..n])?;
        self.inner.flush()
    }
}

impl AppendSink for ChaosFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        if let Some(cause) = self.dead {
            return Err(io::Error::new(io::ErrorKind::StorageFull, cause));
        }
        let nth = self.appends;
        self.appends += 1;
        match self.plan.fault_at(nth) {
            None => {
                self.inner.write_all(buf)?;
                self.inner.flush()
            }
            Some(Fault::Enospc) => {
                self.dead = Some("no space left on device (injected)");
                Err(io::Error::new(io::ErrorKind::StorageFull, "no space left on device (injected)"))
            }
            Some(Fault::Transient) => {
                Err(io::Error::new(io::ErrorKind::Interrupted, "interrupted (injected)"))
            }
            Some(Fault::Short(n)) => {
                self.write_prefix(buf, n)?;
                Err(io::Error::new(io::ErrorKind::StorageFull, "short write (injected)"))
            }
            Some(Fault::Kill(n)) => {
                self.write_prefix(buf, n)?;
                self.dead = Some("killed mid-append (injected)");
                Err(io::Error::new(io::ErrorKind::StorageFull, "killed mid-append (injected)"))
            }
            Some(Fault::BitFlip(bit)) => {
                let mut mangled = buf.to_vec();
                // Never flip the trailing newline: bit flips corrupt a
                // record's *content*; tearing the framing is Short/Kill's
                // job.
                let limit = (mangled.len().saturating_sub(1)) * 8;
                if limit > 0 {
                    let bit = bit % limit;
                    mangled[bit / 8] ^= 1 << (bit % 8);
                }
                self.inner.write_all(&mangled)?;
                self.inner.flush()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_grammar_round_trips() {
        let plan = FaultPlan::parse("enospc@2, short@1:20,flip@0:13,kill@3:7,transient@5").unwrap();
        assert_eq!(plan.fault_at(2), Some(Fault::Enospc));
        assert_eq!(plan.fault_at(1), Some(Fault::Short(20)));
        assert_eq!(plan.fault_at(0), Some(Fault::BitFlip(13)));
        assert_eq!(plan.fault_at(3), Some(Fault::Kill(7)));
        assert_eq!(plan.fault_at(5), Some(Fault::Transient));
        assert_eq!(plan.fault_at(4), None);
    }

    #[test]
    fn plan_grammar_rejects_malformed_clauses() {
        assert!(FaultPlan::parse("enospc").is_err());
        assert!(FaultPlan::parse("short@1").is_err());
        assert!(FaultPlan::parse("flip@x:3").is_err());
        assert!(FaultPlan::parse("meteor@1").is_err());
        assert!(FaultPlan::parse("enospc@1:5").is_err());
        assert!(FaultPlan::parse("").map(|p| p.is_empty()).unwrap_or(false));
    }

    #[test]
    fn enospc_is_persistent_and_transient_is_not() {
        let dir = std::env::temp_dir()
            .join(format!("cochar-faults-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = File::create(dir.join("sink")).unwrap();
        let plan = FaultPlan::new().at(0, Fault::Transient).at(2, Fault::Enospc);
        let mut sink = ChaosFile::new(file, plan);

        let e = sink.append(b"a\n").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::Interrupted);
        sink.append(b"b\n").unwrap(); // transient cleared
        let e = sink.append(b"c\n").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::StorageFull);
        // The disk stays full even for appends with no scheduled fault.
        assert!(sink.append(b"d\n").is_err());
        assert_eq!(std::fs::read(dir.join("sink")).unwrap(), b"b\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_leaves_a_prefix() {
        let dir = std::env::temp_dir()
            .join(format!("cochar-faults-short-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = File::create(dir.join("sink")).unwrap();
        let mut sink = ChaosFile::new(file, FaultPlan::new().at(0, Fault::Short(3)));
        assert!(sink.append(b"abcdef\n").is_err());
        sink.append(b"xy\n").unwrap();
        assert_eq!(std::fs::read(dir.join("sink")).unwrap(), b"abcxy\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_changes_content_but_not_length() {
        let dir = std::env::temp_dir()
            .join(format!("cochar-faults-flip-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = File::create(dir.join("sink")).unwrap();
        let mut sink = ChaosFile::new(file, FaultPlan::new().at(0, Fault::BitFlip(9)));
        sink.append(b"hello\n").unwrap();
        let got = std::fs::read(dir.join("sink")).unwrap();
        assert_eq!(got.len(), 6);
        assert_ne!(got, b"hello\n");
        assert_eq!(got[5], b'\n', "framing newline must survive a flip");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
