//! Canonical JSON encoding of [`RunOutcome`].
//!
//! The encoding is the store's contract: the journal checksum is computed
//! over exactly this form, and the determinism test asserts that a decoded
//! outcome is `==` to the freshly simulated one. Field order is therefore
//! fixed, keys are short (the journal holds thousands of records), and
//! every integer is carried as a native JSON integer (no `f64` detour), so
//! the round trip is bit-exact.

use cochar_machine::{AppResult, CoreCounters, EpochTraffic, Role, RunOutcome};
use cochar_machine::counters::PcCounters;

use crate::json::{Json, JsonError};

/// Encodes a run outcome into its canonical JSON value.
pub fn encode_outcome(o: &RunOutcome) -> Json {
    Json::Obj(vec![
        ("apps".into(), Json::Arr(o.apps.iter().map(encode_app).collect())),
        ("horizon".into(), Json::u64(o.horizon)),
        ("trunc".into(), Json::Bool(o.truncated)),
        ("stall".into(), Json::Bool(o.stalled)),
        ("epochs".into(), Json::Arr(o.epochs.iter().map(encode_epoch).collect())),
        ("epoch_cycles".into(), Json::u64(o.epoch_cycles)),
        ("freq_ghz".into(), Json::f64(o.freq_ghz)),
    ])
}

/// Decodes a canonical JSON value back into a run outcome.
pub fn decode_outcome(v: &Json) -> Result<RunOutcome, JsonError> {
    let apps = v
        .field("apps")?
        .as_arr()?
        .iter()
        .map(decode_app)
        .collect::<Result<Vec<_>, _>>()?;
    let epochs = v
        .field("epochs")?
        .as_arr()?
        .iter()
        .map(decode_epoch)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(RunOutcome {
        apps,
        horizon: v.field("horizon")?.as_u64()?,
        truncated: v.field("trunc")?.as_bool()?,
        stalled: v.field("stall")?.as_bool()?,
        epochs,
        epoch_cycles: v.field("epoch_cycles")?.as_u64()?,
        freq_ghz: v.field("freq_ghz")?.as_f64()?,
    })
}

fn encode_app(a: &AppResult) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::str(&a.name)),
        (
            "role".into(),
            Json::str(match a.role {
                Role::Foreground => "fg",
                Role::Background => "bg",
            }),
        ),
        ("threads".into(), Json::u64(a.threads as u64)),
        ("elapsed".into(), Json::u64(a.elapsed_cycles)),
        ("ctr".into(), encode_counters(&a.counters)),
        ("per_core".into(), Json::Arr(a.per_core.iter().map(encode_counters).collect())),
        ("bg_iters".into(), Json::u64(a.bg_iterations)),
        ("rd".into(), Json::u64(a.read_bytes)),
        ("wr".into(), Json::u64(a.write_bytes)),
    ])
}

fn decode_app(v: &Json) -> Result<AppResult, JsonError> {
    let role = match v.field("role")?.as_str()? {
        "fg" => Role::Foreground,
        "bg" => Role::Background,
        other => return Err(JsonError(format!("unknown role {other:?}"))),
    };
    let per_core = v
        .field("per_core")?
        .as_arr()?
        .iter()
        .map(decode_counters)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(AppResult {
        name: v.field("name")?.as_str()?.to_string(),
        role,
        threads: v.field("threads")?.as_u64()? as usize,
        elapsed_cycles: v.field("elapsed")?.as_u64()?,
        counters: decode_counters(v.field("ctr")?)?,
        per_core,
        bg_iterations: v.field("bg_iters")?.as_u64()?,
        read_bytes: v.field("rd")?.as_u64()?,
        write_bytes: v.field("wr")?.as_u64()?,
    })
}

fn encode_counters(c: &CoreCounters) -> Json {
    let pc = c
        .pc_stats
        .iter()
        .map(|p| {
            Json::Arr(vec![
                Json::u64(p.pc as u64),
                Json::u64(p.accesses),
                Json::u64(p.l2_misses),
                Json::u64(p.pending_cycles),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("i".into(), Json::u64(c.instructions)),
        ("c".into(), Json::u64(c.cycles)),
        ("ld".into(), Json::u64(c.loads)),
        ("st".into(), Json::u64(c.stores)),
        ("l1h".into(), Json::u64(c.l1_hits)),
        ("l2h".into(), Json::u64(c.l2_hits)),
        ("l2m".into(), Json::u64(c.l2_misses)),
        ("llh".into(), Json::u64(c.llc_hits)),
        ("llm".into(), Json::u64(c.llc_misses)),
        ("mg".into(), Json::u64(c.inflight_merges)),
        ("pd".into(), Json::u64(c.pending_cycles)),
        ("pi".into(), Json::u64(c.prefetch_issued)),
        ("pu".into(), Json::u64(c.prefetch_useful)),
        ("pl".into(), Json::u64(c.prefetch_late)),
        ("pt".into(), Json::u64(c.prefetch_throttled)),
        ("ds".into(), Json::u64(c.dep_stall_cycles)),
        ("ms".into(), Json::u64(c.mlp_stall_cycles)),
        ("id".into(), Json::u64(c.idle_cycles)),
        ("pc".into(), Json::Arr(pc)),
    ])
}

fn decode_counters(v: &Json) -> Result<CoreCounters, JsonError> {
    let u = |key: &str| -> Result<u64, JsonError> { v.field(key)?.as_u64() };
    let pc_stats = v
        .field("pc")?
        .as_arr()?
        .iter()
        .map(|row| -> Result<PcCounters, JsonError> {
            let row = row.as_arr()?;
            if row.len() != 4 {
                return Err(JsonError(format!("pc row has {} cells, want 4", row.len())));
            }
            Ok(PcCounters {
                pc: row[0].as_u64()? as u32,
                accesses: row[1].as_u64()?,
                l2_misses: row[2].as_u64()?,
                pending_cycles: row[3].as_u64()?,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CoreCounters {
        instructions: u("i")?,
        cycles: u("c")?,
        loads: u("ld")?,
        stores: u("st")?,
        l1_hits: u("l1h")?,
        l2_hits: u("l2h")?,
        l2_misses: u("l2m")?,
        llc_hits: u("llh")?,
        llc_misses: u("llm")?,
        inflight_merges: u("mg")?,
        pending_cycles: u("pd")?,
        prefetch_issued: u("pi")?,
        prefetch_useful: u("pu")?,
        prefetch_late: u("pl")?,
        prefetch_throttled: u("pt")?,
        dep_stall_cycles: u("ds")?,
        mlp_stall_cycles: u("ms")?,
        idle_cycles: u("id")?,
        pc_stats,
    })
}

fn encode_epoch(e: &EpochTraffic) -> Json {
    Json::Obj(vec![
        ("r".into(), Json::Arr(e.read_bytes.iter().map(|&b| Json::u64(b)).collect())),
        ("w".into(), Json::Arr(e.write_bytes.iter().map(|&b| Json::u64(b)).collect())),
    ])
}

fn decode_epoch(v: &Json) -> Result<EpochTraffic, JsonError> {
    let vec = |key: &str| -> Result<Vec<u64>, JsonError> {
        v.field(key)?.as_arr()?.iter().map(Json::as_u64).collect()
    };
    Ok(EpochTraffic { read_bytes: vec("r")?, write_bytes: vec("w")? })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A fully populated outcome exercising every field of the codec.
    pub(crate) fn sample_outcome() -> RunOutcome {
        let counters = CoreCounters {
            instructions: 1_000_000,
            cycles: 2_500_000,
            loads: 300_000,
            stores: 100_000,
            l1_hits: 350_000,
            l2_hits: 30_000,
            l2_misses: 20_000,
            llc_hits: 12_000,
            llc_misses: 7_000,
            inflight_merges: 1_000,
            pending_cycles: 1_500_000,
            prefetch_issued: 5_000,
            prefetch_useful: 4_000,
            prefetch_late: 300,
            prefetch_throttled: 20,
            dep_stall_cycles: 400_000,
            mlp_stall_cycles: 90_000,
            idle_cycles: 1_234,
            pc_stats: vec![
                PcCounters { pc: 3, accesses: 17, l2_misses: 5, pending_cycles: 999 },
                PcCounters { pc: 8, accesses: 2, l2_misses: 0, pending_cycles: 0 },
            ],
        };
        RunOutcome {
            apps: vec![
                AppResult {
                    name: "pr.graph".into(),
                    role: Role::Foreground,
                    threads: 2,
                    elapsed_cycles: u64::MAX / 3,
                    counters: counters.clone(),
                    per_core: vec![counters.clone(), counters.clone()],
                    bg_iterations: 0,
                    read_bytes: 123_456_789,
                    write_bytes: 987_654,
                },
                AppResult {
                    name: "stream \"quoted\"\n".into(),
                    role: Role::Background,
                    threads: 1,
                    elapsed_cycles: 42,
                    counters: CoreCounters::default(),
                    per_core: vec![],
                    bg_iterations: 7,
                    read_bytes: 0,
                    write_bytes: 1,
                },
            ],
            horizon: 123_456_789_012,
            truncated: true,
            stalled: true,
            epochs: vec![
                EpochTraffic { read_bytes: vec![64, 0], write_bytes: vec![0, 128] },
                EpochTraffic { read_bytes: vec![], write_bytes: vec![] },
            ],
            epoch_cycles: 2_600_000,
            freq_ghz: 2.7,
        }
    }

    #[test]
    fn outcome_round_trips_exactly() {
        let o = sample_outcome();
        let back = decode_outcome(&encode_outcome(&o)).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn encoding_is_stable_across_calls() {
        let o = sample_outcome();
        assert_eq!(encode_outcome(&o).render(), encode_outcome(&o).render());
    }

    #[test]
    fn textual_round_trip_is_canonical() {
        let o = sample_outcome();
        let text = encode_outcome(&o).render();
        let reparsed = Json::parse(&text).unwrap();
        // Re-rendering a parsed canonical document reproduces it byte for
        // byte — the property the journal checksum relies on.
        assert_eq!(reparsed.render(), text);
        assert_eq!(decode_outcome(&reparsed).unwrap(), o);
    }

    #[test]
    fn missing_field_is_a_decode_error() {
        let o = sample_outcome();
        let Json::Obj(mut pairs) = encode_outcome(&o) else { unreachable!() };
        pairs.retain(|(k, _)| k != "horizon");
        assert!(decode_outcome(&Json::Obj(pairs)).is_err());
    }

    #[test]
    fn bad_role_is_a_decode_error() {
        let text = encode_outcome(&sample_outcome()).render().replace("\"fg\"", "\"xx\"");
        let v = Json::parse(&text).unwrap();
        assert!(decode_outcome(&v).is_err());
    }
}
