//! Merge properties of the run store — the invariant the sweep fabric
//! leans on: merging K shuffled, overlapping worker journals (some with
//! torn tails from kill-mid-append fault plans) into a canonical store is
//! **idempotent** and produces exactly the deduped union of every record
//! a worker durably appended. Content addressing makes this safe: two
//! journals never disagree about a key, they either both have the
//! identical record or one is missing it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cochar_machine::RunOutcome;
use cochar_store::journal::JOURNAL_FILE;
use cochar_store::{Fault, FaultPlan, RunKey, RunStore};
use proptest::prelude::*;

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("cochar-merge-{tag}-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Key `n` always maps to the outcome with `horizon == n`, so any two
/// workers that share a key wrote byte-identical records.
fn outcome_for(key: u64) -> Arc<RunOutcome> {
    Arc::new(RunOutcome {
        apps: vec![],
        horizon: key,
        truncated: false,
        stalled: false,
        epochs: vec![],
        epoch_cycles: 1,
        freq_ghz: 2.7,
    })
}

/// Deterministic shuffle (Fisher–Yates over a SplitMix64 stream).
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        items.swap(i, (z % (i as u64 + 1)) as usize);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn merging_shuffled_overlapping_journals_is_idempotent_union(
        subsets in prop::collection::vec(
            prop::collection::vec(1u64..12, 1..10), 1..4),
        kills in prop::collection::vec((any::<bool>(), 0usize..8), 4),
        order_seed in any::<u64>(),
    ) {
        // --- Write each worker journal, possibly tearing its tail.
        let mut worker_dirs = Vec::new();
        let mut union: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut total_acked = 0u64;
        for (w, subset) in subsets.iter().enumerate() {
            let dir = tmpdir(&format!("w{w}"));
            let mut seen = std::collections::BTreeSet::new();
            let keys: Vec<u64> =
                subset.iter().copied().filter(|&k| seen.insert(k)).collect();
            let kill_at = kills
                .get(w)
                .and_then(|&(on, i)| if on { Some(i) } else { None })
                .filter(|&i| i < keys.len());
            let plan = match kill_at {
                // Kill partway through the 40th byte of that append: the
                // record is torn on disk and everything after fails.
                Some(i) => FaultPlan::new().at(i as u64, Fault::Kill(40)),
                None => FaultPlan::new(),
            };
            let store = RunStore::open_with_faults(&dir, plan).unwrap();
            for &k in &keys {
                if store.put(RunKey(k), outcome_for(k)).is_ok() {
                    union.insert(k);
                    total_acked += 1;
                }
            }
            drop(store);
            worker_dirs.push(dir);
        }

        // --- Merge all journals into a canonical store, twice, in a
        // shuffled order each time.
        let canon_dir = tmpdir("canon");
        let canon = RunStore::open(&canon_dir).unwrap();
        let mut order: Vec<usize> = (0..worker_dirs.len()).collect();
        let mut first_added = 0u64;
        let mut first_dups = 0u64;
        shuffle(&mut order, order_seed);
        for &w in &order {
            let (report, replay) =
                canon.merge_journal(&worker_dirs[w].join(JOURNAL_FILE)).unwrap();
            first_added += report.added;
            first_dups += report.duplicates;
            // A kill tears at most the one dying record.
            prop_assert!(replay.torn <= 1, "{replay:?}");
        }
        prop_assert_eq!(first_added as usize, union.len(), "merge must equal the union");
        prop_assert_eq!(first_added + first_dups, total_acked, "every acked record lands");

        shuffle(&mut order, order_seed.wrapping_add(1));
        for &w in &order {
            let (report, _) =
                canon.merge_journal(&worker_dirs[w].join(JOURNAL_FILE)).unwrap();
            prop_assert_eq!(report.added, 0, "second merge must add nothing");
        }

        // --- The canonical store is exactly the deduped union.
        prop_assert_eq!(canon.len(), union.len());
        for &k in &union {
            let got = canon.get(RunKey(k));
            prop_assert!(got.is_some(), "union key {k} missing after merge");
            prop_assert_eq!(got.unwrap().horizon, k, "union key {k} mutated");
        }

        // --- And it survives a reopen byte-for-byte (the merged journal
        // is a valid journal).
        drop(canon);
        let reopened = RunStore::open(&canon_dir).unwrap();
        prop_assert_eq!(reopened.len(), union.len());
        prop_assert_eq!(reopened.replay_report().torn, 0);
        prop_assert_eq!(reopened.replay_report().corrupt, 0);

        drop(reopened);
        for dir in worker_dirs.iter().chain([&canon_dir]) {
            std::fs::remove_dir_all(dir).unwrap();
        }
    }
}

/// The advisory-lock satellite: a second writer (here, the same process
/// opening a second handle) is refused while the journal is held.
#[test]
fn second_open_is_refused_while_journal_is_held() {
    let dir = tmpdir("lock");
    let store = RunStore::open(&dir).unwrap();
    store.put(RunKey(1), outcome_for(1)).unwrap();
    let err = match RunStore::open(&dir) {
        Ok(_) => panic!("second open must be refused while the journal is held"),
        Err(e) => e.to_string(),
    };
    assert!(err.contains("locked"), "expected a lock refusal, got: {err}");
    drop(store);
    let reopened = RunStore::open(&dir).unwrap();
    assert_eq!(reopened.len(), 1);
    drop(reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}
