//! Fault-injection properties of the run store.
//!
//! These tests drive [`RunStore`] through a [`ChaosFile`] executing
//! randomized fault schedules — disk-full, transient EINTR, short writes,
//! bit flips, kill-mid-append — and assert the crash model's core
//! promise: *whatever the faults did to the file, replay reconstructs a
//! consistent store*. No open ever errors, at most one line is torn, the
//! torn tail is repaired on first reopen, and every record the faulted
//! process believed it persisted (and that was not silently corrupted in
//! flight) is still there.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cochar_machine::RunOutcome;
use cochar_store::{Fault, FaultPlan, RunKey, RunStore};
use proptest::prelude::*;

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("cochar-chaos-{tag}-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A minimal but distinguishable outcome: `horizon` carries the tag.
fn outcome(tag: u64) -> Arc<RunOutcome> {
    Arc::new(RunOutcome {
        apps: vec![],
        horizon: tag + 1,
        truncated: false,
        stalled: false,
        epochs: vec![],
        epoch_cycles: 1,
        freq_ghz: 2.7,
    })
}

fn decode_fault(kind: u8, arg: u64) -> Option<Fault> {
    match kind {
        1 => Some(Fault::Enospc),
        2 => Some(Fault::Transient),
        3 => Some(Fault::Short((arg % 200) as usize)),
        4 => Some(Fault::BitFlip((arg % 4096) as usize)),
        5 => Some(Fault::Kill((arg % 200) as usize)),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn replay_is_consistent_under_any_fault_schedule(
        faults in prop::collection::vec((0u8..=5, any::<u64>()), 0..8),
        appends in 1u64..10,
    ) {
        let dir = tmpdir("prop");
        let mut plan = FaultPlan::new();
        let mut flips = false;
        let mut hazards = 0usize; // faults that can leave bytes behind
        for (i, &(kind, arg)) in faults.iter().enumerate() {
            if let Some(f) = decode_fault(kind, arg) {
                flips |= matches!(f, Fault::BitFlip(_));
                hazards +=
                    usize::from(matches!(f, Fault::BitFlip(_) | Fault::Short(_) | Fault::Kill(_)));
                plan = plan.at(i as u64, f);
            }
        }

        // Phase 1: write through the fault schedule; remember which puts
        // the process *believed* succeeded.
        let mut acked: Vec<u64> = Vec::new();
        {
            let store = RunStore::open_with_faults(&dir, plan).unwrap();
            for k in 0..appends {
                if store.put(RunKey(k + 1), outcome(k)).is_ok() {
                    acked.push(k + 1);
                }
            }
        }

        // Phase 2: clean reopen. Whatever the faults did, replay must
        // classify — never fail — and may find at most one torn line.
        let reopened = RunStore::open(&dir).unwrap();
        let report = reopened.replay_report();
        prop_assert!(report.torn <= 1, "{report:?}");
        // Every acked key survives. (A bit flip can corrupt an acked
        // record's content or even rewrite its key, so value equality is
        // only guaranteed flip-free; presence of clean keys still holds
        // because a flipped line either fails its checksum or lands under
        // some key without deleting anything.)
        if !flips {
            for &k in &acked {
                let got = reopened.get(RunKey(k));
                prop_assert!(got.is_some(), "acked key {k} lost");
                prop_assert_eq!(got.unwrap().horizon, k, "acked key {k} mutated");
            }
        }
        // Only faults that leave bytes behind (flips, short writes,
        // kills) can produce untrusted lines; ENOSPC and EINTR write
        // nothing.
        prop_assert!(report.corrupt + report.torn <= hazards, "{report:?} vs {hazards} hazards");

        // Phase 3: the first reopen repaired any torn tail, so a second
        // reopen sees a fully clean file with the same record set. (Each
        // handle is dropped before the next open: the store is
        // single-writer and a live handle holds the journal lock.)
        let reopened_len = reopened.len();
        drop(reopened);
        let again = RunStore::open(&dir).unwrap();
        let second = again.replay_report();
        prop_assert_eq!(second.torn, 0, "tail not repaired: {second:?}");
        prop_assert_eq!(second.valid, report.valid);
        prop_assert_eq!(second.corrupt, report.corrupt);
        prop_assert_eq!(again.len(), reopened_len);

        // Phase 4: the repaired store accepts appends on a clean line
        // boundary and nothing regresses.
        again.put(RunKey(10_000), outcome(9_999)).unwrap();
        drop(again);
        let fresh = RunStore::open(&dir).unwrap();
        prop_assert_eq!(fresh.replay_report().torn, 0);
        prop_assert_eq!(fresh.replay_report().valid, second.valid + 1);
        prop_assert!(fresh.get(RunKey(10_000)).is_some());

        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn kill_mid_append_tears_exactly_the_dying_record() {
    let dir = tmpdir("kill");
    {
        let store =
            RunStore::open_with_faults(&dir, FaultPlan::new().at(2, Fault::Kill(40))).unwrap();
        store.put(RunKey(1), outcome(0)).unwrap();
        store.put(RunKey(2), outcome(1)).unwrap();
        assert!(store.put(RunKey(3), outcome(2)).is_err(), "killed append must surface");
        assert!(store.put(RunKey(4), outcome(3)).is_err(), "dead store stays dead");
    }
    let store = RunStore::open(&dir).unwrap();
    assert_eq!(store.replay_report().torn, 1);
    assert_eq!(store.replay_report().valid, 2);
    assert!(store.get(RunKey(1)).is_some() && store.get(RunKey(2)).is_some());
    assert!(store.get(RunKey(3)).is_none());
    drop(store);

    let repaired = RunStore::open(&dir).unwrap();
    assert_eq!(repaired.replay_report().torn, 0);
    assert_eq!(repaired.replay_report().valid, 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn enospc_fails_the_put_but_never_the_store_contents() {
    let dir = tmpdir("enospc");
    {
        let store =
            RunStore::open_with_faults(&dir, FaultPlan::new().at(1, Fault::Enospc)).unwrap();
        store.put(RunKey(1), outcome(0)).unwrap();
        assert!(store.put(RunKey(2), outcome(1)).is_err());
        // The failed record is not in the index either: callers see one
        // coherent truth, not a memory/disk split brain.
        assert!(store.get(RunKey(2)).is_none());
    }
    let store = RunStore::open(&dir).unwrap();
    assert_eq!(store.replay_report().valid, 1);
    assert_eq!(store.replay_report().torn, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
