//! Offline stand-in for the real `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! shim reimplements the combinator subset the suite's property tests
//! actually use: range strategies over the integer primitives and `f64`,
//! `any::<T>()`, tuple strategies, `prop::collection::vec`, `prop_map` /
//! `prop_flat_map`, and the `proptest!` / `prop_assert!` macros.
//!
//! Unlike the real crate there is no shrinking and no failure persistence;
//! cases are drawn from a SplitMix64 stream seeded from the test's name,
//! so every run of a given test explores the same deterministic inputs.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration (only the case count is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test body runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator seeding each test's case stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from an arbitrary label (FNV-1a over the bytes).
    pub fn from_label(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (which must be positive).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test inputs: the shim's version of `proptest::Strategy`.
pub trait Strategy {
    /// The type of value the strategy produces.
    type Value;

    /// Draws one value from `rng`.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds produced values into a strategy-producing `f` and samples
    /// the resulting strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident),+)),+) => {$(
        #[allow(non_snake_case)]
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Marker for types `any::<T>()` can produce.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T` (the shim supports `u64`, `u32`, `bool`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for vectors of values drawn from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A vector of `size` values drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

/// The glob-import surface test files pull in.
pub mod prelude {
    pub use crate::{any, proptest, prop_assert, prop_assert_eq, ProptestConfig, Strategy};

    /// Namespaced re-exports matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assertion macro; falls back to `assert!` (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion macro; falls back to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares deterministic property tests over strategy-drawn inputs.
///
/// Supports the real crate's common form: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_label(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = TestRng::from_label("x");
        let mut b = TestRng::from_label("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_label("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_label("bounds");
        for _ in 0..1000 {
            let v = (5u64..17).sample(&mut rng);
            assert!((5..17).contains(&v));
            let w = (3usize..=9).sample(&mut rng);
            assert!((3..=9).contains(&w));
            let f = (1.0f64..2.0).sample(&mut rng);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_composition() {
        let mut rng = TestRng::from_label("compose");
        let s = prop::collection::vec((0u32..4, any::<bool>()), 2..6);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&(x, _)| x < 4));
        }
    }

    #[test]
    fn map_and_flat_map() {
        let mut rng = TestRng::from_label("map");
        let s = (1u64..5).prop_flat_map(|n| {
            prop::collection::vec(0u64..10, n as usize).prop_map(move |v| (n, v))
        });
        for _ in 0..100 {
            let (n, v) = s.sample(&mut rng);
            assert_eq!(v.len(), n as usize);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_compiles_and_runs(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            let bit = u64::from(flag);
            prop_assert_eq!(bit * bit, bit);
        }
    }
}
