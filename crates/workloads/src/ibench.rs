//! iBench-style component stressors (Delimitrou & Kozyrakis, IISWC'13 —
//! paper ref [24]): hand-crafted micro-workloads that each pressure one
//! hardware component, used to probe where an application is vulnerable.
//!
//! Not part of the 25-application registry; built on demand via
//! [`specs`] or [`stressor`].

use std::sync::Arc;

use cochar_trace::gen::{Chain, ComputeStream, PointerChase, RandomAccess, Seq};
use cochar_trace::{SlotStream, StreamFactory, StreamParams};

use crate::build::{split_work, thread_region, thread_seed};
use crate::scale::Scale;
use crate::spec::{Domain, WorkloadSpec};

/// The hardware component a stressor targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Component {
    /// Pure ALU pressure; no shared-resource footprint.
    Cpu,
    /// L1-resident working set (private; harmless to neighbours).
    L1,
    /// L2-resident working set (private; harmless to neighbours).
    L2,
    /// LLC-sized random working set: shared-cache capacity pressure with
    /// modest bandwidth.
    Llc,
    /// Streaming far beyond the LLC: maximum bandwidth pressure.
    MemBw,
    /// Dependent chases far beyond the LLC: memory latency pressure with
    /// bounded bandwidth.
    MemLat,
}

impl Component {
    /// All stressors, in probe order (innermost resource first).
    pub const ALL: [Component; 6] = [
        Component::Cpu,
        Component::L1,
        Component::L2,
        Component::Llc,
        Component::MemBw,
        Component::MemLat,
    ];

    /// The stressor's registry-style name.
    pub fn name(&self) -> &'static str {
        match self {
            Component::Cpu => "ibench-cpu",
            Component::L1 => "ibench-l1",
            Component::L2 => "ibench-l2",
            Component::Llc => "ibench-llc",
            Component::MemBw => "ibench-membw",
            Component::MemLat => "ibench-memlat",
        }
    }
}

/// Builds the stressor for one component at the given scale.
pub fn stressor(scale: &Scale, component: Component) -> WorkloadSpec {
    let factory: Arc<dyn StreamFactory> = match component {
        Component::Cpu => {
            let total = scale.scaled(6_000_000);
            Arc::new(move |p: &StreamParams| {
                let my = split_work(total, p.thread, p.threads);
                Box::new(ComputeStream::new(my, 4096)) as Box<dyn SlotStream>
            })
        }
        Component::L1 => resident(scale.llc_frac(1, 512).max(512), scale.scaled(600_000)),
        Component::L2 => resident(scale.llc_frac(1, 64).max(2048), scale.scaled(500_000)),
        Component::Llc => {
            // Random over ~the LLC: occupies shared capacity without
            // saturating bandwidth.
            let bytes = scale.llc_frac(7, 8);
            let total = scale.scaled(300_000);
            Arc::new(move |p: &StreamParams| {
                let mut r = thread_region(p, bytes + 128);
                let a = r.array(bytes / 8, 8);
                let my = split_work(total, p.thread, p.threads);
                Box::new(RandomAccess::new(a, my, 4, 10, false, thread_seed(p), 80))
                    as Box<dyn SlotStream>
            })
        }
        Component::MemBw => {
            let bytes = scale.llc_frac(2, 1);
            let sweeps = scale.scaled(4).max(1);
            Arc::new(move |p: &StreamParams| {
                let per = crate::build::slab_share(bytes, p.threads);
                let mut r = thread_region(p, per + 128);
                let a = r.array(per / 8, 8);
                let parts: Vec<Box<dyn SlotStream>> = (0..sweeps)
                    .map(|_| Box::new(Seq::full(a, 0, 4, 81)) as Box<dyn SlotStream>)
                    .collect();
                Box::new(Chain::new(parts)) as Box<dyn SlotStream>
            })
        }
        Component::MemLat => {
            let bytes = scale.llc_frac(4, 1);
            let total = scale.scaled(60_000);
            Arc::new(move |p: &StreamParams| {
                let mut r = thread_region(p, bytes + 128);
                let a = r.array(bytes / 8, 8);
                let my = split_work(total, p.thread, p.threads);
                Box::new(PointerChase::new(a, my, 2, thread_seed(p), 82))
                    as Box<dyn SlotStream>
            })
        }
    };
    WorkloadSpec {
        name: component.name(),
        suite: "iBench",
        domain: Domain::Mini,
        description: "single-component stressor (iBench style)",
        factory,
    }
}

/// A working set of `bytes` swept with light compute (`total` accesses).
fn resident(bytes: u64, total: u64) -> Arc<dyn StreamFactory> {
    Arc::new(move |p: &StreamParams| {
        let mut r = thread_region(p, bytes + 128);
        let a = r.array(bytes / 8, 8);
        let my = split_work(total, p.thread, p.threads);
        let sweeps = (my / a.count()).max(1);
        let parts: Vec<Box<dyn SlotStream>> = (0..sweeps)
            .map(|_| Box::new(Seq::full(a, 2, 8, 83)) as Box<dyn SlotStream>)
            .collect();
        Box::new(Chain::new(parts)) as Box<dyn SlotStream>
    })
}

/// All six stressors at the given scale.
pub fn specs(scale: &Scale) -> Vec<WorkloadSpec> {
    Component::ALL.iter().map(|&c| stressor(scale, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cochar_trace::slot::stream_census;

    fn p(threads: usize) -> StreamParams {
        StreamParams { thread: 0, threads, base: 1 << 40, seed: 1 }
    }

    #[test]
    fn six_stressors_with_unique_names() {
        let all = specs(&Scale::tiny());
        assert_eq!(all.len(), 6);
        let names: std::collections::HashSet<_> = all.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn all_stressors_terminate() {
        for spec in specs(&Scale::tiny()) {
            let mut s = spec.factory.build(&p(4));
            let (instr, _, _, _) = stream_census(&mut *s, 200_000_000);
            assert!(instr > 0, "{}", spec.name);
        }
    }

    #[test]
    fn cpu_stressor_is_pure_compute() {
        let spec = stressor(&Scale::tiny(), Component::Cpu);
        let mut s = spec.factory.build(&p(2));
        let (_, mem, _, _) = stream_census(&mut *s, 200_000_000);
        assert_eq!(mem, 0);
    }

    #[test]
    fn memlat_is_fully_dependent_membw_is_independent() {
        use cochar_trace::Slot;
        let check = |c: Component, want_dep: bool| {
            let spec = stressor(&Scale::tiny(), c);
            let mut s = spec.factory.build(&p(2));
            while let Some(slot) = s.next_slot() {
                if let Slot::Load { dep, .. } = slot {
                    assert_eq!(dep, want_dep, "{c:?}");
                }
            }
        };
        check(Component::MemLat, true);
        check(Component::MemBw, false);
    }

    #[test]
    fn footprints_are_ordered_by_component() {
        // L1 < L2 < LLC < MemBw footprints.
        let scale = Scale::tiny();
        let span = |c: Component| {
            let spec = stressor(&scale, c);
            let mut s = spec.factory.build(&p(1));
            let (mut lo, mut hi) = (u64::MAX, 0u64);
            while let Some(slot) = s.next_slot() {
                if let Some(a) = slot.addr() {
                    lo = lo.min(a);
                    hi = hi.max(a);
                }
            }
            hi.saturating_sub(lo)
        };
        let l1 = span(Component::L1);
        let l2 = span(Component::L2);
        let llc = span(Component::Llc);
        assert!(l1 <= l2, "{l1} {l2}");
        assert!(l2 < llc, "{l2} {llc}");
    }
}
