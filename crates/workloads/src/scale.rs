//! Workload scaling: tying footprints to the simulated machine.
//!
//! The paper's workloads matter through their *ratios*: footprint vs LLC
//! capacity, bandwidth demand vs controller peak, compute vs memory. A
//! [`Scale`] anchors every workload model to the target machine's LLC so
//! those ratios — and therefore the interference behaviour — are preserved
//! whether the suite runs on the full 20 MB `paper()` machine or a
//! scaled-down one.

use cochar_machine::MachineConfig;
use serde::{Deserialize, Serialize};

/// Scaling parameters shared by all workload models.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// LLC capacity of the target machine (the footprint anchor).
    pub llc_bytes: u64,
    /// Global work multiplier: scales run length without changing
    /// footprints (1.0 ≈ a few million cycles per solo 4-thread run).
    pub work: f64,
    /// log2 of the synthetic graph's vertex count.
    pub graph_scale: u32,
    /// Average out-degree of the synthetic graph.
    pub graph_edge_factor: u32,
    /// Base seed for graph generation and randomized patterns.
    pub seed: u64,
}

impl Scale {
    /// Derives a scale from a machine configuration: the graph is sized so
    /// its footprint is ~2.5x the LLC (friendster vs the paper's 20 MB L3
    /// is far larger still, but beyond ~2x the LLC the miss behaviour is
    /// footprint-insensitive).
    pub fn for_config(cfg: &MachineConfig) -> Self {
        Self::for_llc(cfg.llc.bytes)
    }

    /// Derives a scale from an LLC capacity in bytes.
    pub fn for_llc(llc_bytes: u64) -> Self {
        let edge_factor = 16u32;
        // Target edge count: m * 8 bytes ~ 2.5 * LLC.
        let m_target = llc_bytes * 5 / 16;
        let n_target = (m_target / u64::from(edge_factor)).max(64);
        let graph_scale = 63 - n_target.leading_zeros();
        Scale {
            llc_bytes,
            work: 1.0,
            graph_scale: graph_scale.clamp(6, 22),
            graph_edge_factor: edge_factor,
            seed: 0xC0C4A5,
        }
    }

    /// Tiny scale for unit tests (pairs with `MachineConfig::tiny()`).
    pub fn tiny() -> Self {
        let mut s = Self::for_llc(16 * 1024);
        s.work = 0.1;
        s
    }

    /// Returns a copy with a different work multiplier.
    pub fn with_work(mut self, work: f64) -> Self {
        self.work = work;
        self
    }

    /// Returns a copy with a different seed (trials).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Graph vertex count.
    pub fn graph_vertices(&self) -> u32 {
        1u32 << self.graph_scale
    }

    /// Graph edge count.
    pub fn graph_edges(&self) -> u64 {
        u64::from(self.graph_edge_factor) << self.graph_scale
    }

    /// A footprint of `num/den` times the LLC, line-aligned, at least one
    /// line.
    pub fn llc_frac(&self, num: u64, den: u64) -> u64 {
        ((self.llc_bytes * num / den) / 64).max(1) * 64
    }

    /// Scales a work quantity (slot/iteration counts) by the multiplier.
    pub fn scaled(&self, units: u64) -> u64 {
        ((units as f64 * self.work) as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_footprint_tracks_llc() {
        for llc in [256 * 1024u64, 1 << 20, 20 << 20] {
            let s = Scale::for_llc(llc);
            // Footprint of the graph arrays: (5n + m) * 8 bytes.
            let n = u64::from(s.graph_vertices());
            let m = s.graph_edges();
            let fp = (5 * n + m) * 8;
            let ratio = fp as f64 / llc as f64;
            assert!(
                (1.2..5.0).contains(&ratio),
                "graph footprint should be 1.2-5x LLC, got {ratio:.2} at llc={llc}"
            );
        }
    }

    #[test]
    fn for_config_uses_machine_llc() {
        let cfg = MachineConfig::paper();
        let s = Scale::for_config(&cfg);
        assert_eq!(s.llc_bytes, 20 << 20);
    }

    #[test]
    fn llc_frac_is_line_aligned_and_positive() {
        let s = Scale::for_llc(1 << 20);
        assert_eq!(s.llc_frac(1, 2), 512 * 1024);
        assert_eq!(s.llc_frac(1, 1) % 64, 0);
        assert!(s.llc_frac(1, 1_000_000) >= 64);
    }

    #[test]
    fn scaled_applies_multiplier_with_floor() {
        let s = Scale::for_llc(1 << 20).with_work(0.5);
        assert_eq!(s.scaled(100), 50);
        assert_eq!(s.scaled(1), 1); // never zero
        let s2 = s.with_work(3.0);
        assert_eq!(s2.scaled(100), 300);
    }

    #[test]
    fn graph_scale_is_clamped() {
        let s = Scale::for_llc(64);
        assert!(s.graph_scale >= 6);
        let s = Scale::for_llc(1 << 40);
        assert!(s.graph_scale <= 22);
    }
}
