//! The *bubble*: a tunable synthetic memory-pressure dial.
//!
//! Mars et al.'s Bubble-Up (MICRO'11, cited by the paper) characterizes an
//! application once against a dial-a-pressure stressor and then predicts
//! its degradation under any co-runner from the co-runner's pressure
//! score. This module provides that stressor: a sequential streaming
//! kernel whose bandwidth demand rises monotonically with `intensity`
//! (0..=10), from near-idle to Stream-class.

use std::sync::Arc;

use cochar_trace::gen::Seq;
use cochar_trace::{SlotStream, StreamParams};

use crate::build::{slab_share, thread_region};
use crate::scale::Scale;
use crate::spec::{Domain, WorkloadSpec};

/// Maximum bubble intensity.
pub const MAX_INTENSITY: u32 = 10;

/// Compute cycles inserted between accesses at each intensity: high
/// compute = low pressure. Intensity 10 is a pure stream.
fn compute_gap(intensity: u32) -> u32 {
    assert!(intensity <= MAX_INTENSITY, "intensity 0..=10");
    // 0 -> 120 cycles/access (trickle), 10 -> 0 (firehose).
    (MAX_INTENSITY - intensity) * 12
}

/// Builds the bubble at the given intensity. The footprint streams
/// through 2x the LLC so the pressure hits both shared resources.
pub fn bubble_spec(scale: &Scale, intensity: u32) -> WorkloadSpec {
    let arr_total = scale.llc_frac(2, 1);
    let gap = compute_gap(intensity);
    let sweeps = scale.scaled(3).max(1);
    let name: &'static str = intensity_name(intensity);
    WorkloadSpec {
        name,
        suite: "bubble",
        domain: Domain::Mini,
        description: "tunable streaming memory-pressure stressor (Bubble-Up style)",
        factory: Arc::new(move |p: &StreamParams| {
            let bytes = slab_share(arr_total, p.threads);
            let mut r = thread_region(p, bytes + 128);
            let a = r.array(bytes / 8, 8);
            let parts: Vec<Box<dyn SlotStream>> = (0..sweeps)
                .map(|_| Box::new(Seq::full(a, gap, 4, 90)) as Box<dyn SlotStream>)
                .collect();
            Box::new(cochar_trace::gen::Chain::new(parts)) as Box<dyn SlotStream>
        }),
    }
}

fn intensity_name(intensity: u32) -> &'static str {
    const NAMES: [&str; 11] = [
        "bubble-0", "bubble-1", "bubble-2", "bubble-3", "bubble-4", "bubble-5", "bubble-6",
        "bubble-7", "bubble-8", "bubble-9", "bubble-10",
    ];
    NAMES[intensity as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cochar_trace::slot::stream_census;

    #[test]
    fn intensity_controls_compute_density() {
        let scale = Scale::tiny();
        let p = StreamParams { thread: 0, threads: 4, base: 1 << 40, seed: 1 };
        let density = |i: u32| {
            let spec = bubble_spec(&scale, i);
            let mut s = spec.factory.build(&p);
            let (instr, mem, _, _) = stream_census(&mut *s, 100_000_000);
            instr as f64 / mem as f64
        };
        let low = density(0);
        let high = density(10);
        assert!(low > 20.0, "intensity 0 should be compute-padded: {low}");
        assert!(high < 2.0, "intensity 10 should be a pure stream: {high}");
    }

    #[test]
    fn names_are_distinct_per_intensity() {
        let scale = Scale::tiny();
        let names: std::collections::HashSet<_> =
            (0..=MAX_INTENSITY).map(|i| bubble_spec(&scale, i).name).collect();
        assert_eq!(names.len(), 11);
    }

    #[test]
    #[should_panic(expected = "intensity")]
    fn out_of_range_intensity_panics() {
        let _ = bubble_spec(&Scale::tiny(), 11);
    }
}
