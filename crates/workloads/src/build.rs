//! Shared helpers for workload model construction.

use cochar_trace::gen::{Chain, ComputeStream};
use cochar_trace::{Region, SlotStream, StreamParams};

/// Byte stride between per-thread private regions inside one workload's
/// address region (SPEC-rate-style independent copies). Co-running
/// applications are separated by 2^40, so 8 threads x 2^32 stays well
/// inside one application's region.
pub const THREAD_REGION_STRIDE: u64 = 1 << 32;

/// A region shared by all threads of the workload (graph data, shared
/// arrays).
pub fn shared_region(p: &StreamParams, bytes: u64) -> Region {
    Region::new(p.base, bytes)
}

/// A per-thread private region (rate-mode SPEC copies, per-thread slabs).
pub fn thread_region(p: &StreamParams, bytes: u64) -> Region {
    assert!(bytes < THREAD_REGION_STRIDE, "per-thread footprint too large");
    Region::new(p.base + p.thread as u64 * THREAD_REGION_STRIDE, bytes)
}

/// Per-thread seed derived from the run seed.
pub fn thread_seed(p: &StreamParams) -> u64 {
    p.seed ^ (p.thread as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Splits `total` work items evenly; returns thread `t`'s share (the
/// remainder goes to the low-index threads).
pub fn split_work(total: u64, thread: usize, threads: usize) -> u64 {
    let base = total / threads as u64;
    let rem = total % threads as u64;
    base + u64::from((thread as u64) < rem)
}

/// Per-thread slab size when a fixed total footprint is divided among
/// threads (grid decomposition): line-aligned, never below one page.
pub fn slab_share(total_bytes: u64, threads: usize) -> u64 {
    ((total_bytes / threads as u64).max(4096) / 64) * 64
}

/// Prepends a *serial section* to a thread's stream: `serial_cycles` of
/// compute replicated identically on every thread, so the section's wall
/// time does not shrink with the thread count — Amdahl's law in simulation
/// form. This is how P-SSSP's lock-step relaxations, xalancbmk's parsing
/// front-end, and AMG2006's setup phases get their sub-linear scaling.
pub fn with_serial_prefix(
    serial_cycles: u64,
    inner: Box<dyn SlotStream>,
) -> Box<dyn SlotStream> {
    if serial_cycles == 0 {
        return inner;
    }
    Box::new(Chain::new(vec![
        Box::new(ComputeStream::new(serial_cycles, 4096)) as Box<dyn SlotStream>,
        inner,
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cochar_trace::slot::stream_census;
    use cochar_trace::{Slot, VecStream};

    fn params(thread: usize) -> StreamParams {
        StreamParams { thread, threads: 4, base: 1 << 40, seed: 9 }
    }

    #[test]
    fn thread_regions_are_disjoint() {
        let a = thread_region(&params(0), 1 << 20);
        let b = thread_region(&params(1), 1 << 20);
        assert!(a.end() <= b.base());
    }

    #[test]
    fn shared_region_is_same_for_all_threads() {
        let a = shared_region(&params(0), 4096);
        let b = shared_region(&params(3), 4096);
        assert_eq!(a.base(), b.base());
    }

    #[test]
    fn thread_seeds_differ() {
        let s0 = thread_seed(&params(0));
        let s1 = thread_seed(&params(1));
        assert_ne!(s0, s1);
        assert_eq!(s0, thread_seed(&params(0)));
    }

    #[test]
    fn split_work_sums_to_total() {
        for total in [0u64, 1, 7, 100, 101, 103] {
            let sum: u64 = (0..4).map(|t| split_work(total, t, 4)).sum();
            assert_eq!(sum, total);
        }
        // Even split when divisible.
        assert_eq!(split_work(100, 0, 4), 25);
        assert_eq!(split_work(100, 3, 4), 25);
    }

    #[test]
    fn serial_prefix_adds_replicated_compute() {
        let inner = Box::new(VecStream::new(vec![Slot::Compute(5)]));
        let mut s = with_serial_prefix(1000, inner);
        let (instr, _, _, _) = stream_census(&mut *s, 100);
        assert_eq!(instr, 1005);
    }

    #[test]
    fn zero_serial_prefix_is_identity() {
        let inner = Box::new(VecStream::new(vec![Slot::Compute(5)]));
        let mut s = with_serial_prefix(0, inner);
        assert_eq!(s.next_slot(), Some(Slot::Compute(5)));
        assert_eq!(s.next_slot(), None);
    }
}
