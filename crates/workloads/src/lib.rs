//! # cochar-workloads
//!
//! Models of the paper's 25 applications (Table I) and two
//! mini-benchmarks, expressed as [`cochar_trace::StreamFactory`]s over the
//! synthetic pattern generators and the graph substrate.
//!
//! Each model encodes an application's *resource-usage signature* —
//! footprint relative to the LLC, access regularity, dependence structure,
//! compute/memory ratio, and synchronization shape — taken from the
//! paper's own solo-run characterization (Figs. 2-4). Everything else
//! (bandwidth, scalability, prefetcher sensitivity, co-running
//! degradation) is *measured* by simulating these models on
//! `cochar-machine`; no slowdowns are baked in.
//!
//! ```
//! use cochar_workloads::{Registry, Scale};
//!
//! let registry = Registry::new(Scale::tiny());
//! assert_eq!(registry.applications().len(), 25);
//! let gpr = registry.get("G-PR").unwrap();
//! assert_eq!(gpr.suite, "GeminiGraph");
//! ```

#![warn(missing_docs)]

pub mod bubble;
pub mod ibench;
pub mod build;
pub mod cntk;
pub mod graph;
pub mod hpc;
pub mod mini;
pub mod parsec;
pub mod registry;
pub mod scale;
pub mod spec;
pub mod speccpu;

pub use registry::Registry;
pub use scale::Scale;
pub use spec::{Domain, WorkloadSpec};
