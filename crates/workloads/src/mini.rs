//! The two memory-stressing mini-benchmarks (paper Sec. III-B/VI-B).
//!
//! * **Stream** — McCalpin's triad: maximally regular, prefetcher-amplified
//!   bandwidth (~24.5 GB/s solo at 4 threads, against a ~28 GB/s practical
//!   peak). The paper's worst-case offender: co-running with Stream slows
//!   the 25 applications to an average 0.61x, graph applications to ~2x.
//! * **Bandit** — from Dr-BW (Xu et al., IPDPS'17): every access conflicts
//!   with its predecessor in the caches, so *all* requests go to memory
//!   (~18 GB/s), but nothing benefits from caches or prefetchers — a pure
//!   bandwidth stressor whose co-running impact is far milder (0.77-1.0x).

use std::sync::Arc;

use cochar_trace::gen::{ConflictStream, Triad};
use cochar_trace::{SlotStream, StreamFactory, StreamParams};

use crate::build::{slab_share, split_work, thread_region, thread_seed};
use crate::scale::Scale;
use crate::spec::{Domain, WorkloadSpec};

fn stream_factory(scale: &Scale) -> Arc<dyn StreamFactory> {
    let arr_total = scale.llc_frac(2, 1);
    let iterations = scale.scaled(2).max(1);
    Arc::new(move |p: &StreamParams| {
        let arr_bytes = slab_share(arr_total, p.threads);
        let mut r = thread_region(p, 3 * arr_bytes + 256);
        let n = arr_bytes / 8;
        let a = r.array(n, 8);
        let b = r.array(n, 8);
        let c = r.array(n, 8);
        Box::new(Triad::new(a, b, c, iterations)) as Box<dyn SlotStream>
    })
}

fn bandit_factory(scale: &Scale) -> Arc<dyn StreamFactory> {
    let arr_bytes = scale.llc_frac(4, 1);
    // Way-span of the LLC (sets * line): consecutive accesses land in the
    // same set group and evict each other at every level.
    let conflict_stride = scale.llc_frac(1, 16);
    let accesses_total = scale.scaled(240_000);
    Arc::new(move |p: &StreamParams| {
        let mut r = thread_region(p, arr_bytes + 128);
        let arr = r.array(arr_bytes / 8, 8);
        let my = split_work(accesses_total, p.thread, p.threads);
        Box::new(ConflictStream::new(
            arr,
            my,
            conflict_stride,
            4,
            thread_seed(p),
            70,
        )) as Box<dyn SlotStream>
    })
}

/// Builds the two mini-benchmark specs.
pub fn specs(scale: &Scale) -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "stream",
            suite: "mini-benchmarks",
            domain: Domain::Mini,
            description: "McCalpin STREAM triad: regular, prefetch-amplified peak bandwidth",
            factory: stream_factory(scale),
        },
        WorkloadSpec {
            name: "bandit",
            suite: "mini-benchmarks",
            domain: Domain::Mini,
            description: "Bandit: all-miss conflicting accesses, cache/prefetch-immune bandwidth",
            factory: bandit_factory(scale),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cochar_trace::slot::stream_census;
    use cochar_trace::Slot;

    fn p(thread: usize, threads: usize) -> StreamParams {
        StreamParams { thread, threads, base: 1 << 40, seed: 2 }
    }

    #[test]
    fn two_minis() {
        let names: Vec<_> = specs(&Scale::tiny()).iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["stream", "bandit"]);
    }

    #[test]
    fn stream_is_two_loads_one_store() {
        let spec = specs(&Scale::tiny()).into_iter().find(|s| s.name == "stream").unwrap();
        let mut s = spec.factory.build(&p(0, 4));
        let (_, mem, loads, stores) = stream_census(&mut *s, 100_000_000);
        assert_eq!(loads, 2 * stores);
        assert_eq!(mem, loads + stores);
    }

    #[test]
    fn bandit_loads_are_independent() {
        let spec = specs(&Scale::tiny()).into_iter().find(|s| s.name == "bandit").unwrap();
        let mut s = spec.factory.build(&p(0, 4));
        while let Some(slot) = s.next_slot() {
            if let Slot::Load { dep, .. } = slot {
                assert!(!dep, "Bandit requests must be independent (high MLP)");
            }
        }
    }

    #[test]
    fn minis_use_private_thread_regions() {
        for spec in specs(&Scale::tiny()) {
            let first = |t: usize| {
                let mut s = spec.factory.build(&p(t, 2));
                loop {
                    match s.next_slot() {
                        Some(slot) => {
                            if let Some(a) = slot.addr() {
                                return a;
                            }
                        }
                        None => panic!("no access"),
                    }
                }
            };
            let d = first(1).abs_diff(first(0));
            assert!(d >= (1 << 30), "{}: thread regions too close", spec.name);
        }
    }
}
