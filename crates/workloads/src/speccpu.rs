//! SPEC CPU2017 workload models (rate mode: independent per-thread copies).
//!
//! The six benchmarks chosen by the paper's subsetting (Phansalkar-style):
//! three floating-point (cactuBSSN, nab, fotonik3d) and three integer
//! (xalancbmk, mcf, deepsjeng). Rate-mode semantics are modelled by giving
//! every thread its own private data region.
//!
//! The two personalities that matter for interference: **fotonik3d** is
//! the paper's prototypical offender (regular FDTD sweeps, ~18.4 GB/s at
//! 4 copies, 1.18x prefetcher-sensitive, saturates beyond 4 copies);
//! **mcf** is latency-bound pointer chasing over a large arc network.

use std::sync::Arc;

use cochar_trace::gen::{Chain, ComputeStream, Interleave, PointerChase, RandomAccess, Seq, Stencil};
use cochar_trace::{SlotStream, StreamFactory, StreamParams};

use crate::build::{slab_share, split_work, thread_region, thread_seed, with_serial_prefix};
use crate::scale::Scale;
use crate::spec::{Domain, WorkloadSpec};

fn mcf(scale: &Scale) -> Arc<dyn StreamFactory> {
    // Each copy's arc network alone exceeds the LLC (real mcf touches
    // hundreds of MB), so chases go to memory at any copy count and
    // rate-mode scaling stays near-linear until bandwidth saturates.
    let slab = scale.llc_frac(2, 1);
    let total = scale.scaled(70_000);
    Arc::new(move |p: &StreamParams| {
        let mut r = thread_region(p, slab + 128);
        let arcs = r.array(slab / 8, 8);
        let my = split_work(total, p.thread, p.threads);
        let seed = thread_seed(p);
        // Network simplex: arc-list chases with interleaved independent
        // cost lookups.
        Box::new(Interleave::new(vec![
            (Box::new(PointerChase::new(arcs, my * 2 / 5, 8, seed, 50)) as Box<dyn SlotStream>, 2),
            (Box::new(RandomAccess::new(arcs, my * 3 / 5, 8, 10, false, seed ^ 1, 51)), 3),
        ])) as Box<dyn SlotStream>
    })
}

fn fotonik3d(scale: &Scale) -> Arc<dyn StreamFactory> {
    let src_total = scale.llc_frac(2, 1);
    let dst_total = scale.llc_frac(1, 1);
    let sweeps = scale.scaled(2).max(1);
    Arc::new(move |p: &StreamParams| {
        // The grid is divided among threads; each thread's private slab
        // shrinks as threads grow (total footprint and work are fixed).
        let src_bytes = slab_share(src_total, p.threads);
        let dst_bytes = slab_share(dst_total, p.threads);
        let mut r = thread_region(p, src_bytes + dst_bytes + 256);
        let src = r.array(src_bytes / 8, 8);
        let dst = r.array(dst_bytes / 8, 8);
        let plane = ((src.count() / 8) | 1).max(1); // odd: avoids set aliasing
        // FDTD field updates: 4 concurrent plane streams per output.
        let parts: Vec<Box<dyn SlotStream>> = (0..sweeps)
            .map(|_| {
                Box::new(Stencil::new(src, dst, 0, dst.count(), 4, plane, 4, 52))
                    as Box<dyn SlotStream>
            })
            .collect();
        Box::new(Chain::new(parts)) as Box<dyn SlotStream>
    })
}

fn deepsjeng(scale: &Scale) -> Arc<dyn StreamFactory> {
    let table = scale.llc_frac(1, 16);
    let cycles = scale.scaled(4_000_000);
    let serial = scale.scaled(450_000);
    Arc::new(move |p: &StreamParams| {
        let mut r = thread_region(p, table + 128);
        let tt = r.array(table / 8, 8);
        let my = split_work(cycles, p.thread, p.threads);
        // Alpha-beta search: compute bursts with transposition-table
        // probes that stay cache-resident, behind a replicated opening
        // phase (Table II puts deepsjeng in Medium).
        let inner = Box::new(Interleave::new(vec![
            (Box::new(ComputeStream::new(my, 1024)) as Box<dyn SlotStream>, 20),
            (Box::new(RandomAccess::new(tt, my / 800 + 1, 0, 20, false, thread_seed(p), 53)), 1),
        ])) as Box<dyn SlotStream>;
        with_serial_prefix(serial, inner)
    })
}

fn nab(scale: &Scale) -> Arc<dyn StreamFactory> {
    let slab = scale.llc_frac(1, 16);
    let total = scale.scaled(150_000);
    Arc::new(move |p: &StreamParams| {
        let mut r = thread_region(p, slab + 128);
        let atoms = r.array(slab / 8, 8);
        let my = split_work(total, p.thread, p.threads);
        let sweeps = (my / atoms.count()).max(1);
        // Molecular dynamics: repeated sweeps of the atom array with heavy
        // force-field math per element.
        let parts: Vec<Box<dyn SlotStream>> = (0..sweeps)
            .map(|_| Box::new(Seq::full(atoms, 20, 6, 54)) as Box<dyn SlotStream>)
            .collect();
        Box::new(Chain::new(parts)) as Box<dyn SlotStream>
    })
}

fn xalancbmk(scale: &Scale) -> Arc<dyn StreamFactory> {
    let dom = scale.llc_frac(1, 16);
    let total = scale.scaled(80_000);
    let serial = scale.scaled(250_000);
    Arc::new(move |p: &StreamParams| {
        let mut r = thread_region(p, dom + 128);
        let nodes = r.array(dom / 8, 8);
        let my = split_work(total, p.thread, p.threads);
        // XSLT: DOM-tree chases (LLC-resident) behind a replicated
        // parsing front-end (medium scalability in Table II).
        let inner =
            Box::new(PointerChase::new(nodes, my, 4, thread_seed(p), 55)) as Box<dyn SlotStream>;
        with_serial_prefix(serial, inner)
    })
}

fn cactubssn(scale: &Scale) -> Arc<dyn StreamFactory> {
    let src_total = scale.llc_frac(1, 1);
    let dst_total = scale.llc_frac(1, 2);
    let sweeps = scale.scaled(3).max(1);
    Arc::new(move |p: &StreamParams| {
        let src_bytes = slab_share(src_total, p.threads);
        let dst_bytes = slab_share(dst_total, p.threads);
        let mut r = thread_region(p, src_bytes + dst_bytes + 256);
        let src = r.array(src_bytes / 8, 8);
        let dst = r.array(dst_bytes / 8, 8);
        let plane = ((src.count() / 16) | 1).max(1);
        // Numerical relativity: wide stencils over a mostly cache-blocked
        // grid with substantial per-point math.
        let parts: Vec<Box<dyn SlotStream>> = (0..sweeps)
            .map(|_| {
                Box::new(Stencil::new(src, dst, 0, dst.count(), 8, plane, 8, 56))
                    as Box<dyn SlotStream>
            })
            .collect();
        Box::new(Chain::new(parts)) as Box<dyn SlotStream>
    })
}

/// Builds the six SPEC CPU2017 workload specs.
pub fn specs(scale: &Scale) -> Vec<WorkloadSpec> {
    let w = |name, description, factory| WorkloadSpec {
        name,
        suite: "SPEC CPU2017",
        domain: Domain::SpecCpu,
        description,
        factory,
    };
    vec![
        w("mcf", "Network simplex: latency-bound arc chasing over a large graph", mcf(scale)),
        w(
            "fotonik3d",
            "FDTD electromagnetics: regular plane sweeps, ~18 GB/s offender",
            fotonik3d(scale),
        ),
        w("deepsjeng", "Chess search: compute bursts + cache-resident table probes", deepsjeng(scale)),
        w("nab", "Molecular dynamics: force-field math over a small atom array", nab(scale)),
        w("xalancbmk", "XSLT: DOM chases behind a replicated parsing front-end", xalancbmk(scale)),
        w("cactuBSSN", "Numerical relativity: wide cache-blocked stencils", cactubssn(scale)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cochar_trace::slot::stream_census;
    use cochar_trace::Slot;

    fn p(thread: usize, threads: usize) -> StreamParams {
        StreamParams { thread, threads, base: 1 << 40, seed: 4 }
    }

    #[test]
    fn six_specs_with_paper_names() {
        let names: Vec<_> = specs(&Scale::tiny()).iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["mcf", "fotonik3d", "deepsjeng", "nab", "xalancbmk", "cactuBSSN"]
        );
    }

    #[test]
    fn all_streams_terminate() {
        for spec in specs(&Scale::tiny()) {
            let mut s = spec.factory.build(&p(1, 4));
            let (instr, mem, _, _) = stream_census(&mut *s, 100_000_000);
            assert!(instr > 0 && mem > 0, "{}", spec.name);
        }
    }

    #[test]
    fn rate_mode_threads_use_private_regions() {
        for spec in specs(&Scale::tiny()) {
            let addr_of_first_access = |t: usize| {
                let mut s = spec.factory.build(&p(t, 2));
                while let Some(slot) = s.next_slot() {
                    if let Some(a) = slot.addr() {
                        return a;
                    }
                }
                panic!("{} has no memory access", spec.name)
            };
            let a0 = addr_of_first_access(0);
            let a1 = addr_of_first_access(1);
            assert!(
                a1 >= a0 + (1 << 30) || a0 >= a1 + (1 << 30),
                "{}: rate copies must live in distant regions",
                spec.name
            );
        }
    }

    #[test]
    fn mcf_mixes_dependent_chases_with_independent_lookups() {
        let spec = specs(&Scale::tiny()).into_iter().find(|s| s.name == "mcf").unwrap();
        let mut s = spec.factory.build(&p(0, 4));
        let (mut dep, mut indep) = (0u64, 0u64);
        while let Some(slot) = s.next_slot() {
            if let Slot::Load { dep: d, .. } = slot {
                if d {
                    dep += 1;
                } else {
                    indep += 1;
                }
            }
        }
        let frac = dep as f64 / (dep + indep) as f64;
        assert!(
            (0.25..0.55).contains(&frac),
            "mcf chase fraction should be ~0.4: dep={dep} indep={indep}"
        );
    }

    #[test]
    fn fotonik_is_memory_dense_deepsjeng_is_compute_dense() {
        let all = specs(&Scale::tiny());
        let density = |name: &str| {
            let spec = all.iter().find(|s| s.name == name).unwrap();
            let mut s = spec.factory.build(&p(0, 4));
            let (instr, mem, _, _) = stream_census(&mut *s, 100_000_000);
            instr as f64 / mem.max(1) as f64
        };
        assert!(density("deepsjeng") > 8.0 * density("fotonik3d"));
    }

    #[test]
    fn xalancbmk_has_serial_front_end() {
        let spec = specs(&Scale::tiny()).into_iter().find(|s| s.name == "xalancbmk").unwrap();
        // Thread 0's instruction count shrinks sublinearly from 1 to 8
        // threads because the parse front-end is replicated.
        let instr = |threads| {
            let mut s = spec.factory.build(&p(0, threads));
            stream_census(&mut *s, 100_000_000).0
        };
        let i1 = instr(1) as f64;
        let i8 = instr(8) as f64;
        assert!(i8 > i1 / 6.0, "serial prefix must keep 8t work above 1/6 of 1t");
        assert!(i8 < i1, "parallel part must still shrink");
    }
}
