//! PARSEC workload models (native input sizes).
//!
//! * **blackscholes** — embarrassingly parallel option pricing: huge
//!   compute-to-memory ratio, tiny footprint, ~8x scaling, negligible
//!   bandwidth — the paper's canonical *harmless* co-runner.
//! * **freqmine** — FP-growth frequent itemset mining: cache-resident tree
//!   walks, compute-heavy, scales well.
//! * **swaptions** — Monte-Carlo pricing: pure compute, near-perfect
//!   scaling.
//! * **streamcluster** — online clustering: repeated streaming distance
//!   computations over a working set larger than the LLC — high bandwidth,
//!   strongly prefetcher-sensitive (paper Fig. 4), and the one PARSEC
//!   member that saturates around 4 threads.

use std::sync::Arc;

use cochar_trace::gen::{Chain, ComputeStream, Interleave, RandomAccess, Seq};
use cochar_trace::{SlotStream, StreamFactory, StreamParams};

use crate::build::{shared_region, split_work, thread_region, thread_seed};
use crate::scale::Scale;
use crate::spec::{Domain, WorkloadSpec};

fn blackscholes(scale: &Scale) -> Arc<dyn StreamFactory> {
    let slab = scale.llc_frac(1, 16);
    let total_options = scale.scaled(100_000);
    // Input parsing/setup is replicated: Table II puts blackscholes in
    // Medium despite the embarrassingly parallel pricing loop.
    let serial = scale.scaled(500_000);
    Arc::new(move |p: &StreamParams| {
        let mut r = thread_region(p, slab + 128);
        let a = r.array(slab / 8, 8);
        let my = split_work(total_options, p.thread, p.threads);
        // One option record load per option, ~60 FLOPs of Black-Scholes
        // math, occasional result store.
        let mut parts: Vec<Box<dyn SlotStream>> = Vec::new();
        let full_sweeps = my / a.count();
        let rem = my % a.count();
        for _ in 0..full_sweeps {
            parts.push(Box::new(Seq::full(a, 60, 8, 30)));
        }
        parts.push(Box::new(Seq::slice(a, 0, rem.min(a.count()), 60, 8, 30)));
        crate::build::with_serial_prefix(serial, Box::new(Chain::new(parts)) as Box<dyn SlotStream>)
    })
}

fn freqmine(scale: &Scale) -> Arc<dyn StreamFactory> {
    let tree_bytes = scale.llc_frac(1, 2);
    let total = scale.scaled(400_000);
    Arc::new(move |p: &StreamParams| {
        // The FP-tree is shared; walks are random but LLC-resident.
        let mut r = shared_region(p, tree_bytes + 128);
        let tree = r.array(tree_bytes / 8, 8);
        let my = split_work(total, p.thread, p.threads);
        Box::new(RandomAccess::new(tree, my, 10, 5, false, thread_seed(p), 40))
            as Box<dyn SlotStream>
    })
}

fn swaptions(scale: &Scale) -> Arc<dyn StreamFactory> {
    let total_cycles = scale.scaled(6_000_000);
    let slab = scale.llc_frac(1, 32);
    Arc::new(move |p: &StreamParams| {
        let my = split_work(total_cycles, p.thread, p.threads);
        let mut r = thread_region(p, slab + 128);
        let a = r.array(slab / 8, 8);
        // Monte-Carlo paths: long compute bursts with rare state touches.
        Box::new(Interleave::new(vec![
            (Box::new(ComputeStream::new(my, 2048)) as Box<dyn SlotStream>, 50),
            (Box::new(RandomAccess::new(a, my / 3000 + 1, 0, 20, false, thread_seed(p), 41)), 1),
        ])) as Box<dyn SlotStream>
    })
}

fn streamcluster(scale: &Scale) -> Arc<dyn StreamFactory> {
    let points_bytes = scale.llc_frac(2, 1);
    let sweeps = scale.scaled(5).max(1);
    Arc::new(move |p: &StreamParams| {
        // Shared point array; each thread repeatedly streams its slice
        // computing distances to the current centres.
        let mut r = shared_region(p, points_bytes + 128);
        let points = r.array(points_bytes / 8, 8);
        let n = points.count();
        let lo = n * p.thread as u64 / p.threads as u64;
        let hi = n * (p.thread as u64 + 1) / p.threads as u64;
        let parts: Vec<Box<dyn SlotStream>> = (0..sweeps)
            .map(|_| Box::new(Seq::slice(points, lo, hi, 3, 0, 42)) as Box<dyn SlotStream>)
            .collect();
        Box::new(Chain::new(parts)) as Box<dyn SlotStream>
    })
}

/// Builds the four PARSEC workload specs.
pub fn specs(scale: &Scale) -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "blackscholes",
            suite: "PARSEC",
            domain: Domain::Parsec,
            description: "Option pricing: compute-dense, tiny footprint, harmless co-runner",
            factory: blackscholes(scale),
        },
        WorkloadSpec {
            name: "freqmine",
            suite: "PARSEC",
            domain: Domain::Parsec,
            description: "FP-growth mining: LLC-resident tree walks, compute-heavy",
            factory: freqmine(scale),
        },
        WorkloadSpec {
            name: "swaptions",
            suite: "PARSEC",
            domain: Domain::Parsec,
            description: "Monte-Carlo swaption pricing: pure compute, near-perfect scaling",
            factory: swaptions(scale),
        },
        WorkloadSpec {
            name: "streamcluster",
            suite: "PARSEC",
            domain: Domain::Parsec,
            description: "Online clustering: streaming distance kernel, prefetch-sensitive",
            factory: streamcluster(scale),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cochar_trace::slot::stream_census;

    fn p(thread: usize, threads: usize) -> StreamParams {
        StreamParams { thread, threads, base: 1 << 40, seed: 3 }
    }

    #[test]
    fn four_specs_with_paper_names() {
        let names: Vec<_> = specs(&Scale::tiny()).iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["blackscholes", "freqmine", "swaptions", "streamcluster"]);
    }

    #[test]
    fn all_streams_terminate() {
        for spec in specs(&Scale::tiny()) {
            let mut s = spec.factory.build(&p(0, 4));
            let (instr, _, _, _) = stream_census(&mut *s, 100_000_000);
            assert!(instr > 0, "{}", spec.name);
        }
    }

    #[test]
    fn compute_density_ordering_matches_the_paper() {
        // swaptions and blackscholes are compute-dense; streamcluster is
        // memory-dense.
        let all = specs(&Scale::tiny());
        let density = |name: &str| {
            let spec = all.iter().find(|s| s.name == name).unwrap();
            let mut s = spec.factory.build(&p(0, 4));
            let (instr, mem, _, _) = stream_census(&mut *s, 100_000_000);
            instr as f64 / mem.max(1) as f64
        };
        let sw = density("swaptions");
        let bs = density("blackscholes");
        let sc = density("streamcluster");
        assert!(sw > 10.0 * sc, "swaptions {sw:.1} vs streamcluster {sc:.1}");
        assert!(bs > 5.0 * sc, "blackscholes {bs:.1} vs streamcluster {sc:.1}");
    }

    #[test]
    fn streamcluster_slices_are_disjoint_across_threads() {
        let spec = specs(&Scale::tiny()).into_iter().find(|s| s.name == "streamcluster").unwrap();
        let addrs = |t: usize| {
            let mut s = spec.factory.build(&p(t, 2));
            let mut set = std::collections::HashSet::new();
            while let Some(slot) = s.next_slot() {
                if let Some(a) = slot.addr() {
                    set.insert(a);
                }
            }
            set
        };
        let a0 = addrs(0);
        let a1 = addrs(1);
        assert!(a0.is_disjoint(&a1), "thread slices must not overlap");
        assert!(!a0.is_empty() && !a1.is_empty());
    }

    #[test]
    fn blackscholes_work_splits_by_thread() {
        let spec = specs(&Scale::tiny()).into_iter().find(|s| s.name == "blackscholes").unwrap();
        let mem = |thread, threads| {
            let mut s = spec.factory.build(&p(thread, threads));
            stream_census(&mut *s, 100_000_000).1
        };
        let solo = mem(0, 1) as f64;
        let quarter = mem(0, 4) as f64;
        assert!(
            (quarter / solo - 0.25).abs() < 0.05,
            "4-thread share should be ~1/4: {quarter} vs {solo}"
        );
    }
}
