//! Deep-learning training workload models (Microsoft CNTK).
//!
//! Only the training phase is modelled (as the paper measures). The four
//! applications differ in working-set size, data reuse, and
//! synchronization structure:
//!
//! * **ConvNet-CIFAR** — convolution layers streaming large activation and
//!   weight tensors: low reuse, high bandwidth (~18 GB/s at 4 threads in
//!   the paper, a frequent *offender*).
//! * **ConvNet-MNIST** — small tensors, heavy reuse: compute-bound,
//!   near-linear scaling.
//! * **LSTM-AN4** — recurrent weight matrices about the size of the LLC,
//!   moderate reuse, medium bandwidth.
//! * **ATIS** — tiny batch NLP model dominated by OpenMP barrier spinning
//!   (`kmp_hyper_barrier_release`, 80% of cycles above 2 threads):
//!   effectively no scalability.

use std::sync::Arc;

use cochar_trace::gen::{BarrierLoop, BlockedGemm, Chain, ComputeStream, RandomAccess};
use cochar_trace::{SlotStream, StreamFactory, StreamParams};

use crate::build::{split_work, thread_region, thread_seed};
use crate::scale::Scale;
use crate::spec::{Domain, WorkloadSpec};

/// GEMM-style model: per-thread operand slabs, tiled traversal.
fn gemm_factory(
    slab_bytes: u64,
    tile_bytes: u64,
    tiles_total: u64,
    reuse: u32,
    compute: u32,
) -> Arc<dyn StreamFactory> {
    Arc::new(move |p: &StreamParams| {
        let mut r = thread_region(p, 2 * slab_bytes + 256);
        let elems = slab_bytes / 8;
        let a = r.array(elems, 8);
        let b = r.array(elems, 8);
        let tile = (tile_bytes / 8).clamp(1, elems);
        let my_tiles = split_work(tiles_total, p.thread, p.threads);
        if my_tiles == 0 {
            return Box::new(cochar_trace::VecStream::new(vec![])) as Box<dyn SlotStream>;
        }
        let first = p.thread as u64 * 7919; // decorrelate tile phases
        Box::new(BlockedGemm::new(a, b, tile, my_tiles, reuse, compute, first, 20))
            as Box<dyn SlotStream>
    })
}

/// ATIS: barrier-bound training loop. Per iteration each thread computes
/// its shard and then spins `(T-1)/T` of the iteration's work in the
/// barrier, so wall time is flat in the thread count.
fn atis_factory(total_compute: u64, iters: u64, touch_bytes: u64) -> Arc<dyn StreamFactory> {
    Arc::new(move |p: &StreamParams| {
        let threads = p.threads as u64;
        let per_iter = total_compute / iters;
        let body = per_iter / threads;
        let barrier = per_iter - body; // = per_iter * (T-1)/T
        let seed = thread_seed(p);
        let mut r = thread_region(p, touch_bytes + 128);
        let arr = r.array(touch_bytes / 8, 8);
        Box::new(BarrierLoop::new(
            iters,
            barrier,
            Box::new(move |i| {
                Box::new(Chain::new(vec![
                    Box::new(ComputeStream::new(body, 4096)) as Box<dyn SlotStream>,
                    // A sprinkle of embedding-table lookups per iteration.
                    Box::new(RandomAccess::new(arr, 200, 4, 10, false, seed ^ i, 21)),
                ])) as Box<dyn SlotStream>
            }),
        )) as Box<dyn SlotStream>
    })
}

/// Builds the four CNTK workload specs.
pub fn specs(scale: &Scale) -> Vec<WorkloadSpec> {
    let llc = |n, d| scale.llc_frac(n, d);
    vec![
        WorkloadSpec {
            name: "CIFAR",
            suite: "CNTK",
            domain: Domain::DeepLearning,
            description: "ConvNet-CIFAR training: streaming conv layers, low reuse, high bandwidth",
            factory: gemm_factory(
                llc(1, 1),
                llc(1, 16),
                scale.scaled(64),
                1,
                3,
            ),
        },
        WorkloadSpec {
            name: "MNIST",
            suite: "CNTK",
            domain: Domain::DeepLearning,
            description: "ConvNet-MNIST training: small tensors, heavy reuse, compute-bound",
            factory: gemm_factory(
                llc(1, 8),
                llc(1, 32),
                scale.scaled(24),
                6,
                6,
            ),
        },
        WorkloadSpec {
            name: "LSTM",
            suite: "CNTK",
            domain: Domain::DeepLearning,
            description: "LSTM-AN4 training: LLC-sized recurrent weights, moderate reuse",
            factory: gemm_factory(
                llc(3, 8),
                llc(1, 8),
                scale.scaled(20),
                2,
                3,
            ),
        },
        WorkloadSpec {
            name: "ATIS",
            suite: "CNTK",
            domain: Domain::DeepLearning,
            description: "ATIS NLP training: barrier-dominated, no thread scalability",
            factory: atis_factory(scale.scaled(1_500_000), 16, llc(1, 32)),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cochar_trace::slot::stream_census;

    fn p(thread: usize, threads: usize) -> StreamParams {
        StreamParams { thread, threads, base: 1 << 40, seed: 5 }
    }

    #[test]
    fn four_specs_with_paper_names() {
        let s = specs(&Scale::tiny());
        let names: Vec<_> = s.iter().map(|x| x.name).collect();
        assert_eq!(names, vec!["CIFAR", "MNIST", "LSTM", "ATIS"]);
    }

    #[test]
    fn all_streams_terminate() {
        for spec in specs(&Scale::tiny()) {
            let mut s = spec.factory.build(&p(0, 4));
            let (instr, _, _, _) = stream_census(&mut *s, 50_000_000);
            assert!(instr > 0, "{}", spec.name);
        }
    }

    #[test]
    fn atis_work_is_flat_in_thread_count() {
        // Instructions per thread must stay ~constant as threads grow:
        // the barrier eats what the parallel share saves.
        let spec = specs(&Scale::tiny()).into_iter().find(|s| s.name == "ATIS").unwrap();
        let instr = |threads| {
            let mut s = spec.factory.build(&p(0, threads));
            stream_census(&mut *s, 100_000_000).0
        };
        let i1 = instr(1) as f64;
        let i8 = instr(8) as f64;
        assert!(
            (i8 / i1) > 0.85 && (i8 / i1) < 1.25,
            "ATIS per-thread work should be flat: 1t={i1} 8t={i8}"
        );
    }

    #[test]
    fn mnist_is_more_compute_dense_than_cifar() {
        let all = specs(&Scale::tiny());
        let density = |name: &str| {
            let spec = all.iter().find(|s| s.name == name).unwrap();
            let mut s = spec.factory.build(&p(0, 4));
            let (instr, mem, _, _) = stream_census(&mut *s, 50_000_000);
            instr as f64 / mem as f64
        };
        assert!(density("MNIST") > density("CIFAR") * 1.5);
    }

    #[test]
    fn cifar_work_splits_across_threads() {
        let spec = specs(&Scale::tiny()).into_iter().find(|s| s.name == "CIFAR").unwrap();
        let mem = |thread, threads| {
            let mut s = spec.factory.build(&p(thread, threads));
            stream_census(&mut *s, 50_000_000).1
        };
        let solo = mem(0, 1);
        let four: u64 = (0..4).map(|t| mem(t, 4)).sum();
        let drift = (solo as f64 - four as f64).abs() / solo as f64;
        assert!(drift < 0.05, "total accesses must be thread-invariant: {solo} vs {four}");
    }
}
