//! The workload registry: Table I of the paper.
//!
//! 25 applications across five domains plus the two mini-benchmarks,
//! addressable by name. The 25 applications form the 625 consolidation
//! pairs of Fig. 5; the mini-benchmarks drive the Fig. 6 sensitivity
//! study.

use std::collections::HashMap;

use crate::graph::GraphAssets;
use crate::scale::Scale;
use crate::spec::{Domain, WorkloadSpec};
use crate::{cntk, graph, hpc, mini, parsec, speccpu};

/// All workloads of the study, built for one [`Scale`].
pub struct Registry {
    scale: Scale,
    specs: Vec<WorkloadSpec>,
    by_name: HashMap<&'static str, usize>,
}

impl Registry {
    /// Builds the full registry (generates the shared graph and computes
    /// every graph algorithm's frontiers — a one-time host cost).
    pub fn new(scale: Scale) -> Self {
        let assets = GraphAssets::build(&scale);
        let mut specs = Vec::new();
        specs.extend(graph::specs(&assets));
        specs.extend(cntk::specs(&scale));
        specs.extend(parsec::specs(&scale));
        specs.extend(speccpu::specs(&scale));
        specs.extend(hpc::specs(&scale));
        specs.extend(mini::specs(&scale));
        let by_name = specs
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name, i))
            .collect();
        Registry { scale, specs, by_name }
    }

    /// The scale the registry was built for.
    pub fn scale(&self) -> &Scale {
        &self.scale
    }

    /// All workloads including the mini-benchmarks.
    pub fn all(&self) -> &[WorkloadSpec] {
        &self.specs
    }

    /// The 25 applications of the consolidation study (mini-benchmarks
    /// excluded) — the rows and columns of Fig. 5.
    pub fn applications(&self) -> Vec<&WorkloadSpec> {
        self.specs.iter().filter(|s| s.domain != Domain::Mini).collect()
    }

    /// The two mini-benchmarks.
    pub fn minis(&self) -> Vec<&WorkloadSpec> {
        self.specs.iter().filter(|s| s.domain == Domain::Mini).collect()
    }

    /// Lookup by paper name (e.g. "G-PR", "fotonik3d", "stream").
    pub fn get(&self, name: &str) -> Option<&WorkloadSpec> {
        self.by_name.get(name).map(|&i| &self.specs[i])
    }

    /// Workloads of one domain.
    pub fn by_domain(&self, domain: Domain) -> Vec<&WorkloadSpec> {
        self.specs.iter().filter(|s| s.domain == domain).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Registry {
        Registry::new(Scale::tiny())
    }

    #[test]
    fn twenty_five_applications_plus_two_minis() {
        let r = registry();
        assert_eq!(r.applications().len(), 25);
        assert_eq!(r.minis().len(), 2);
        assert_eq!(r.all().len(), 27);
    }

    #[test]
    fn names_are_unique() {
        let r = registry();
        let names: std::collections::HashSet<_> = r.all().iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 27);
    }

    #[test]
    fn table_one_counts_per_suite() {
        let r = registry();
        let count = |suite: &str| r.all().iter().filter(|s| s.suite == suite).count();
        assert_eq!(count("GeminiGraph"), 5);
        assert_eq!(count("PowerGraph"), 3);
        assert_eq!(count("CNTK"), 4);
        assert_eq!(count("PARSEC"), 4);
        assert_eq!(count("SPEC CPU2017"), 6);
        assert_eq!(count("HPC"), 3);
        assert_eq!(count("mini-benchmarks"), 2);
    }

    #[test]
    fn lookup_by_name() {
        let r = registry();
        assert_eq!(r.get("G-PR").unwrap().suite, "GeminiGraph");
        assert_eq!(r.get("fotonik3d").unwrap().domain, Domain::SpecCpu);
        assert!(r.get("nonexistent").is_none());
    }

    #[test]
    fn by_domain_partitions_the_set() {
        let r = registry();
        let total: usize = [
            Domain::Graph,
            Domain::DeepLearning,
            Domain::Parsec,
            Domain::SpecCpu,
            Domain::Hpc,
            Domain::Mini,
        ]
        .iter()
        .map(|&d| r.by_domain(d).len())
        .sum();
        assert_eq!(total, 27);
    }
}
