//! Graph-analytics workload models: GeminiGraph (G-*) and PowerGraph (P-*).
//!
//! All eight applications traverse the *same* synthetic R-MAT graph (the
//! friendster substitute), exactly as the paper runs both frameworks on
//! the same input. The Gemini five (PR, BFS, BC, SSSP, CC) use chunked
//! degree-balanced partitioning; the PowerGraph three (PR, SSSP, CC) use
//! interleaved vertex-cut GAS execution with mirror traffic.
//!
//! P-SSSP carries a large replicated serial section, reproducing the
//! paper's observation that its identical-edge-weight assumption destroys
//! scalability (speedup < 2x at 8 threads).

use std::sync::Arc;

use cochar_graphs::algos;
use cochar_graphs::engines::{build_stream, EngineKind, GraphLayout};
use cochar_graphs::{Csr, GraphJob, RmatConfig};
use cochar_trace::{SlotStream, StreamFactory, StreamParams};

use crate::build::with_serial_prefix;
use crate::scale::Scale;
use crate::spec::{Domain, WorkloadSpec};

/// The shared graph plus every algorithm's precomputed execution
/// structure. Built once per [`Scale`] and shared by all graph workload
/// factories (frontier computation is host work, not simulated work).
pub struct GraphAssets {
    /// The shared synthetic graph.
    pub csr: Arc<Csr>,
    /// PageRank's phase structure.
    pub pr: Arc<GraphJob>,
    /// BFS's per-level frontiers.
    pub bfs: Arc<GraphJob>,
    /// Betweenness centrality's forward+backward levels.
    pub bc: Arc<GraphJob>,
    /// Weighted SSSP relaxation rounds (G-SSSP).
    pub sssp_weighted: Arc<GraphJob>,
    /// Unit-weight SSSP rounds (P-SSSP).
    pub sssp_unit: Arc<GraphJob>,
    /// Label-propagation rounds.
    pub cc: Arc<GraphJob>,
}

impl GraphAssets {
    /// Generates the graph and computes every algorithm's frontiers.
    pub fn build(scale: &Scale) -> Self {
        let cfg = RmatConfig::skewed(scale.graph_scale, scale.graph_edge_factor, scale.seed);
        let csr = Arc::new(Csr::rmat(&cfg));
        let pr_iters = scale.scaled(3).clamp(1, 20) as u32;
        GraphAssets {
            pr: Arc::new(algos::pagerank_job(pr_iters)),
            bfs: Arc::new(algos::bfs_job(&csr, 0)),
            bc: Arc::new(algos::bc_job(&csr, 0)),
            sssp_weighted: Arc::new(algos::sssp_job(&csr, 0, false)),
            sssp_unit: Arc::new(algos::sssp_job(&csr, 0, true)),
            cc: Arc::new(algos::cc_job(&csr)),
            csr,
        }
    }

    /// Total edge visits of a job on this graph — the work proxy used to
    /// size serial sections.
    pub fn edge_visits(&self, job: &GraphJob) -> u64 {
        job.phases
            .iter()
            .map(|p| match &p.active {
                cochar_graphs::ActiveSet::All => self.csr.edges(),
                cochar_graphs::ActiveSet::List(l) => self.csr.degree_sum(l),
            })
            .sum()
    }
}

fn graph_factory(
    kind: EngineKind,
    csr: Arc<Csr>,
    job: Arc<GraphJob>,
    serial_cycles: u64,
) -> Arc<dyn StreamFactory> {
    Arc::new(move |p: &StreamParams| {
        let mut region = cochar_trace::Region::new(
            p.base,
            GraphLayout::bytes_needed(csr.vertices(), csr.edges()),
        );
        let layout = GraphLayout::new(&mut region, csr.vertices(), csr.edges());
        let scan = build_stream(kind, &csr, layout, &job, p.thread, p.threads);
        with_serial_prefix(serial_cycles, Box::new(scan) as Box<dyn SlotStream>)
    })
}

/// Builds the eight graph workload specs.
pub fn specs(assets: &GraphAssets) -> Vec<WorkloadSpec> {
    let csr = &assets.csr;
    // Rough single-thread cycle estimates used only to size serial
    // sections (cycles per edge visit, including misses).
    let power_cycles_per_edge = 14u64;
    // P-SSSP: ~2/3 serial => speedup(8) < 2x, matching the paper.
    let sssp_par = assets.edge_visits(&assets.sssp_unit) * power_cycles_per_edge;
    let sssp_serial = sssp_par * 2;
    // G-SSSP: a small replicated frontier-synchronization cost per run —
    // its sparse re-activation rounds carry more barrier overhead per
    // unit of work than the dense algorithms ("less sharp" scaling,
    // Sec. IV-A).
    let gemini_cycles_per_edge = 8u64;
    let gsssp_serial =
        assets.edge_visits(&assets.sssp_weighted) * gemini_cycles_per_edge / 16;

    let g = |name, job: &Arc<GraphJob>, serial: u64, desc| WorkloadSpec {
        name,
        suite: "GeminiGraph",
        domain: Domain::Graph,
        description: desc,
        factory: graph_factory(EngineKind::Gemini, csr.clone(), job.clone(), serial),
    };
    let p = |name, job: &Arc<GraphJob>, serial, desc| WorkloadSpec {
        name,
        suite: "PowerGraph",
        domain: Domain::Graph,
        description: desc,
        factory: graph_factory(EngineKind::Power, csr.clone(), job.clone(), serial),
    };

    vec![
        g("G-PR", &assets.pr, 0, "PageRank power iterations: dense gather-heavy edge scans"),
        g("G-BFS", &assets.bfs, 0, "Breadth-first search: sparse per-level frontier scans"),
        g("G-BC", &assets.bc, 0, "Betweenness centrality: forward + backward level sweeps"),
        g(
            "G-SSSP",
            &assets.sssp_weighted,
            gsssp_serial,
            "Weighted SSSP: label-correcting rounds with re-activation",
        ),
        g("G-CC", &assets.cc, 0, "Connected components: label propagation to fixpoint"),
        p(
            "P-PR",
            &assets.pr,
            0,
            "PageRank under vertex-cut GAS: gather dominates CPU cycles",
        ),
        p(
            "P-SSSP",
            &assets.sssp_unit,
            sssp_serial,
            "Unit-weight SSSP: serialized rounds, speedup < 2x (paper Sec. IV-A)",
        ),
        p("P-CC", &assets.cc, 0, "Connected components under vertex-cut GAS"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cochar_trace::slot::stream_census;

    fn assets() -> GraphAssets {
        GraphAssets::build(&Scale::tiny())
    }

    #[test]
    fn builds_eight_specs_with_paper_names() {
        let a = assets();
        let specs = specs(&a);
        let names: Vec<_> = specs.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["G-PR", "G-BFS", "G-BC", "G-SSSP", "G-CC", "P-PR", "P-SSSP", "P-CC"]
        );
        assert!(specs.iter().all(|s| s.domain == Domain::Graph));
    }

    #[test]
    fn streams_terminate_and_do_work() {
        let a = assets();
        for spec in specs(&a) {
            let p = StreamParams { thread: 0, threads: 2, base: 0, seed: 1 };
            let mut s = spec.factory.build(&p);
            let (instr, mem, _, _) = stream_census(&mut *s, 50_000_000);
            assert!(instr > 0, "{} produced no instructions", spec.name);
            assert!(mem > 0, "{} produced no memory accesses", spec.name);
        }
    }

    #[test]
    fn thread_streams_partition_the_edge_scan() {
        // Summed gather counts over all threads must be constant however
        // many threads there are.
        let a = assets();
        let spec = &specs(&a)[0]; // G-PR
        let total = |threads: usize| -> u64 {
            (0..threads)
                .map(|t| {
                    let p = StreamParams { thread: t, threads, base: 0, seed: 1 };
                    let mut s = spec.factory.build(&p);
                    stream_census(&mut *s, 50_000_000).1
                })
                .sum()
        };
        let t1 = total(1);
        let t4 = total(4);
        let drift = (t1 as f64 - t4 as f64).abs() / t1 as f64;
        assert!(drift < 0.05, "1-thread {t1} vs 4-thread {t4} accesses drift {drift:.3}");
    }

    #[test]
    fn p_sssp_has_replicated_serial_work() {
        let a = assets();
        let all = specs(&a);
        let sssp = all.iter().find(|s| s.name == "P-SSSP").unwrap();
        // Thread 1 of 8 must carry (nearly) as many instructions as thread
        // 1 of 2: the serial prefix dominates and is replicated.
        let instr = |threads| {
            let p = StreamParams { thread: 1, threads, base: 0, seed: 1 };
            let mut s = sssp.factory.build(&p);
            stream_census(&mut *s, 100_000_000).0
        };
        let i2 = instr(2);
        let i8 = instr(8);
        assert!(
            i8 as f64 > i2 as f64 * 0.5,
            "serial part must not shrink with threads: 2t={i2} 8t={i8}"
        );
    }

    #[test]
    fn edge_visits_counts_dense_phase_as_all_edges() {
        let a = assets();
        let v = a.edge_visits(&a.pr);
        let iters = a.pr.phases.len() as u64;
        assert_eq!(v, a.csr.edges() * iters);
    }
}
