//! Workload specification: the unit the co-location harness schedules.

use std::sync::Arc;

use cochar_trace::StreamFactory;
use serde::{Deserialize, Serialize};

/// Application domain (Table I of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Graph analytics (GeminiGraph, PowerGraph).
    Graph,
    /// Deep learning training (CNTK).
    DeepLearning,
    /// Parallel real-world applications (PARSEC).
    Parsec,
    /// CPU/memory-intensive standard benchmarks (SPEC CPU2017, rate mode).
    SpecCpu,
    /// LLNL HPC proxy applications.
    Hpc,
    /// Memory-stressing mini-benchmarks (Stream, Bandit).
    Mini,
}

impl Domain {
    /// Human-readable suite label.
    pub fn label(&self) -> &'static str {
        match self {
            Domain::Graph => "Graph",
            Domain::DeepLearning => "CNTK",
            Domain::Parsec => "PARSEC",
            Domain::SpecCpu => "SPEC CPU2017",
            Domain::Hpc => "HPC",
            Domain::Mini => "mini-benchmarks",
        }
    }
}

/// One of the suite's applications: a named, domain-tagged stream factory.
#[derive(Clone)]
pub struct WorkloadSpec {
    /// Short name as used in the paper's figures (e.g. "G-PR", "fotonik3d").
    pub name: &'static str,
    /// Benchmark suite (e.g. "GeminiGraph", "SPEC CPU2017").
    pub suite: &'static str,
    /// Domain bucket.
    pub domain: Domain,
    /// One-line description of the model.
    pub description: &'static str,
    /// Builds the per-thread slot streams.
    pub factory: Arc<dyn StreamFactory>,
}

impl std::fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadSpec")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .field("domain", &self.domain)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cochar_trace::{Slot, SlotStream, StreamParams, VecStream};

    #[test]
    fn domain_labels_are_distinct() {
        let all = [
            Domain::Graph,
            Domain::DeepLearning,
            Domain::Parsec,
            Domain::SpecCpu,
            Domain::Hpc,
            Domain::Mini,
        ];
        let labels: std::collections::HashSet<_> = all.iter().map(|d| d.label()).collect();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn spec_debug_is_compact() {
        let spec = WorkloadSpec {
            name: "x",
            suite: "s",
            domain: Domain::Mini,
            description: "d",
            factory: Arc::new(|_: &StreamParams| {
                Box::new(VecStream::new(vec![Slot::Compute(1)])) as Box<dyn SlotStream>
            }),
        };
        let s = format!("{spec:?}");
        assert!(s.contains("\"x\""));
        assert!(!s.contains("factory"));
    }
}
