//! LLNL HPC workload models.
//!
//! * **lulesh** — Sedov blast-wave hydrodynamics: stencil sweeps with
//!   substantial per-point math; scales well (Table II: High).
//! * **IRSmk** — the IRS matrix-multiply kernel: nested do-loops reading
//!   many planes per output point — extremely regular, ~18.1 GB/s at
//!   4 threads, strongly prefetcher-sensitive, saturates around 6 threads.
//! * **AMG2006** — algebraic multigrid: two serial setup phases followed
//!   by a short, memory-intensive solve phase — low overall scalability
//!   and *bursty* bandwidth (an offender only during its last phase).

use std::sync::Arc;

use cochar_trace::gen::{Chain, Stencil};
use cochar_trace::{SlotStream, StreamFactory, StreamParams};

use crate::build::{slab_share, thread_region, with_serial_prefix};
use crate::scale::Scale;
use crate::spec::{Domain, WorkloadSpec};

fn lulesh(scale: &Scale) -> Arc<dyn StreamFactory> {
    let src_total = scale.llc_frac(2, 1);
    let dst_total = scale.llc_frac(1, 1);
    let sweeps = scale.scaled(2).max(1);
    Arc::new(move |p: &StreamParams| {
        let src_bytes = slab_share(src_total, p.threads);
        let dst_bytes = slab_share(dst_total, p.threads);
        let mut r = thread_region(p, src_bytes + dst_bytes + 256);
        let src = r.array(src_bytes / 8, 8);
        let dst = r.array(dst_bytes / 8, 8);
        let plane = ((src.count() / 8) | 1).max(1); // odd: avoids set aliasing
        let parts: Vec<Box<dyn SlotStream>> = (0..sweeps)
            .map(|_| {
                Box::new(Stencil::new(src, dst, 0, dst.count(), 3, plane, 8, 60))
                    as Box<dyn SlotStream>
            })
            .collect();
        Box::new(Chain::new(parts)) as Box<dyn SlotStream>
    })
}

fn irsmk(scale: &Scale) -> Arc<dyn StreamFactory> {
    // Same regular multi-plane signature as fotonik3d — the paper reports
    // near-identical solo numbers for the two (18.1 vs 18.4 GB/s, both
    // 1.18x prefetcher-sensitive) — with a slightly smaller output grid.
    let src_total = scale.llc_frac(2, 1);
    let dst_total = scale.llc_frac(1, 2);
    let sweeps = scale.scaled(2).max(1);
    Arc::new(move |p: &StreamParams| {
        let src_bytes = slab_share(src_total, p.threads);
        let dst_bytes = slab_share(dst_total, p.threads);
        let mut r = thread_region(p, src_bytes + dst_bytes + 256);
        let src = r.array(src_bytes / 8, 8);
        let dst = r.array(dst_bytes / 8, 8);
        let plane = ((src.count() / 8) | 1).max(1);
        // 27-point matmul loops collapsed to 4 plane streams per output
        // point: maximally regular, prefetch-dependent, ~18-20 GB/s at
        // 4 threads (the paper's 18.1), saturating past ~6 threads.
        let parts: Vec<Box<dyn SlotStream>> = (0..sweeps)
            .map(|_| {
                Box::new(Stencil::new(src, dst, 0, dst.count(), 4, plane, 4, 61))
                    as Box<dyn SlotStream>
            })
            .collect();
        Box::new(Chain::new(parts)) as Box<dyn SlotStream>
    })
}

fn amg2006(scale: &Scale) -> Arc<dyn StreamFactory> {
    let src_total = scale.llc_frac(2, 1);
    let dst_total = scale.llc_frac(1, 1);
    // Phases 1-2 (serial data setup) are ~45% of the single-thread run.
    let serial = scale.scaled(900_000);
    Arc::new(move |p: &StreamParams| {
        let src_bytes = slab_share(src_total, p.threads);
        let dst_bytes = slab_share(dst_total, p.threads);
        let mut r = thread_region(p, src_bytes + dst_bytes + 256);
        let src = r.array(src_bytes / 8, 8);
        let dst = r.array(dst_bytes / 8, 8);
        let plane = ((src.count() / 4) | 1).max(1);
        // Phase 3: the memory-intensive multigrid solve burst.
        let solve = Box::new(Stencil::new(src, dst, 0, dst.count(), 2, plane, 1, 62))
            as Box<dyn SlotStream>;
        with_serial_prefix(serial, solve)
    })
}

/// Builds the three HPC workload specs.
pub fn specs(scale: &Scale) -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "lulesh",
            suite: "HPC",
            domain: Domain::Hpc,
            description: "Sedov blast-wave hydrodynamics: stencils with heavy per-point math",
            factory: lulesh(scale),
        },
        WorkloadSpec {
            name: "IRSmk",
            suite: "HPC",
            domain: Domain::Hpc,
            description: "IRS matmul kernel: many-plane regular sweeps, ~18 GB/s offender",
            factory: irsmk(scale),
        },
        WorkloadSpec {
            name: "AMG2006",
            suite: "HPC",
            domain: Domain::Hpc,
            description: "Algebraic multigrid: serial setup phases + bursty solve phase",
            factory: amg2006(scale),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cochar_trace::slot::stream_census;

    fn p(thread: usize, threads: usize) -> StreamParams {
        StreamParams { thread, threads, base: 1 << 40, seed: 6 }
    }

    #[test]
    fn three_specs_with_paper_names() {
        let names: Vec<_> = specs(&Scale::tiny()).iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["lulesh", "IRSmk", "AMG2006"]);
    }

    #[test]
    fn all_streams_terminate() {
        for spec in specs(&Scale::tiny()) {
            let mut s = spec.factory.build(&p(0, 4));
            let (instr, mem, _, _) = stream_census(&mut *s, 100_000_000);
            assert!(instr > 0 && mem > 0, "{}", spec.name);
        }
    }

    #[test]
    fn irsmk_is_more_memory_dense_than_lulesh() {
        let all = specs(&Scale::tiny());
        let density = |name: &str| {
            let spec = all.iter().find(|s| s.name == name).unwrap();
            let mut s = spec.factory.build(&p(0, 4));
            let (instr, mem, _, _) = stream_census(&mut *s, 100_000_000);
            instr as f64 / mem.max(1) as f64
        };
        assert!(
            density("lulesh") > 1.2 * density("IRSmk"),
            "lulesh should carry more math per access"
        );
    }

    #[test]
    fn amg_serial_phase_is_replicated() {
        let spec = specs(&Scale::tiny()).into_iter().find(|s| s.name == "AMG2006").unwrap();
        let instr = |threads| {
            let mut s = spec.factory.build(&p(0, threads));
            stream_census(&mut *s, 100_000_000).0
        };
        let i1 = instr(1) as f64;
        let i8 = instr(8) as f64;
        // The serial setup keeps 8-thread per-thread work well above 1/8.
        assert!(i8 > i1 / 4.0, "AMG2006 serial phases must be replicated: {i1} vs {i8}");
    }
}
