//! Registry-wide batched-fill equivalence: every stream a registry
//! factory can build must yield the same slot sequence through
//! `SlotStream::fill` as through repeated `next_slot` calls, under
//! adversarial refill budgets.
//!
//! `crates/trace/tests/batch.rs` proves this per generator with property
//! sampling over constructor parameters; this sweep proves it for the
//! *compositions* the 25 application models actually ship (chains,
//! interleaves, barrier loops, per-thread shards), so a new workload
//! wired from a hand-batched generator cannot silently resequence.

use cochar_trace::{Slot, SlotBuf, StreamParams};
use cochar_workloads::{Registry, Scale};

/// Compares the first `limit` slots of two identically-built streams,
/// one consumed slot by slot and one through `fill` with the given
/// cycling budget schedule.
fn assert_fill_matches_next(
    next: &mut dyn cochar_trace::SlotStream,
    fill: &mut dyn cochar_trace::SlotStream,
    caps: &[usize],
    limit: usize,
    what: &str,
) {
    let mut expect = Vec::with_capacity(limit);
    while expect.len() < limit {
        match next.next_slot() {
            Some(s) => expect.push(s),
            None => break,
        }
    }
    let mut got: Vec<Slot> = Vec::with_capacity(expect.len());
    let mut buf = SlotBuf::new();
    let mut cap_i = 0;
    while got.len() < expect.len() {
        buf.clear();
        buf.set_cap(caps[cap_i % caps.len()]);
        cap_i += 1;
        let pulled = fill.fill(&mut buf);
        let expanded: Vec<Slot> = buf.iter_slots().collect();
        assert_eq!(pulled, expanded.len(), "{what}: fill return miscounted buffered slots");
        if pulled == 0 {
            assert!(fill.next_slot().is_none(), "{what}: fill returned 0 on a live stream");
            break;
        }
        got.extend(expanded);
    }
    assert!(
        got.len() >= expect.len().min(limit),
        "{what}: fill ended after {} slots, next_slot produced {}",
        got.len(),
        expect.len()
    );
    got.truncate(expect.len());
    assert_eq!(got, expect, "{what}: slot sequences diverged");
}

#[test]
fn every_registry_stream_fill_matches_next() {
    let reg = Registry::new(Scale::tiny());
    // Budget schedules: per-slot refills, a group-splitting mixture, and
    // whole-batch pulls (the engine's QUANTUM-paced steady state).
    let schedules: [&[usize]; 3] = [&[1], &[7, 160, 3], &[4096]];
    for spec in reg.all() {
        for caps in schedules {
            for (thread, threads, seed) in [(0, 1, 1u64), (1, 4, 0x5EED)] {
                let params = StreamParams { thread, threads, base: 1 << 40, seed };
                let mut next = spec.factory.build(&params);
                let mut fill = spec.factory.build(&params);
                let what = format!("{} t{thread}/{threads} seed={seed} caps={caps:?}", spec.name);
                assert_fill_matches_next(&mut *next, &mut *fill, caps, 4096, &what);
            }
        }
    }
}
